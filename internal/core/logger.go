package core

import (
	"strings"
	"time"

	"symfail/internal/phone"
	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// Config tunes the logger. Zero values fall back to the defaults the study
// deployment used.
type Config struct {
	// HeartbeatPeriod is the Heartbeat AO period (default: the device's
	// configured heartbeat period). Shorter periods detect freezes with
	// finer off-time resolution at the price of flash wear — the ablation
	// bench sweeps this.
	HeartbeatPeriod time.Duration
	// RunAppPeriod is the Running Applications Detector sampling period.
	RunAppPeriod time.Duration
	// ActivityPeriod is the Log Engine collection period.
	ActivityPeriod time.Duration
	// MaxLogBytes caps the consolidated Log File on flash. When an append
	// would exceed the cap, the oldest complete records are dropped
	// (front-truncated at a record boundary) — study-era phones had
	// single-digit megabytes of flash to spare. Zero means 1 MiB.
	MaxLogBytes int
	// Paths for the on-flash files (defaults: the Default*Path constants).
	LogPath, BeatsPath, RunAppPath, ActivityPath, PowerPath string
}

func (c Config) withDefaults(d *phone.Device) Config {
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = d.Config().HeartbeatPeriod
	}
	if c.HeartbeatPeriod <= 0 {
		c.HeartbeatPeriod = 5 * time.Minute
	}
	if c.RunAppPeriod <= 0 {
		c.RunAppPeriod = d.Config().RunAppSamplePeriod
	}
	if c.RunAppPeriod <= 0 {
		c.RunAppPeriod = 10 * time.Minute
	}
	if c.ActivityPeriod <= 0 {
		c.ActivityPeriod = 30 * time.Minute
	}
	if c.MaxLogBytes <= 0 {
		c.MaxLogBytes = 1 << 20
	}
	if c.LogPath == "" {
		c.LogPath = DefaultLogPath
	}
	if c.BeatsPath == "" {
		c.BeatsPath = DefaultBeatsPath
	}
	if c.RunAppPath == "" {
		c.RunAppPath = DefaultRunAppPath
	}
	if c.ActivityPath == "" {
		c.ActivityPath = DefaultActivityPath
	}
	if c.PowerPath == "" {
		c.PowerPath = DefaultPowerPath
	}
	return c
}

// Logger is the failure data logger installed on one device. It restarts
// its daemon at every boot (the phone start-up launches it, Figure 1) and
// accumulates its records on the device's flash filesystem.
type Logger struct {
	dev *phone.Device
	cfg Config
}

// Install attaches the logger to a device. It takes effect from the next
// boot, so call it before the device's enrolment boot fires.
func Install(d *phone.Device, cfg Config) *Logger {
	l := &Logger{dev: d, cfg: cfg.withDefaults(d)}
	d.OnBoot(l.startDaemon)
	return l
}

// Device returns the instrumented device.
func (l *Logger) Device() *phone.Device { return l.dev }

// Config returns the resolved logger configuration.
func (l *Logger) Config() Config { return l.cfg }

// Records parses the consolidated Log File as currently on flash.
func (l *Logger) Records() []Record {
	data, ok := l.dev.FS().Read(l.cfg.LogPath)
	if !ok {
		return nil
	}
	return ParseRecords(data)
}

// LogBytes returns the raw Log File (what the collection infrastructure
// uploads).
func (l *Logger) LogBytes() []byte {
	data, _ := l.dev.FS().Read(l.cfg.LogPath)
	return data
}

// daemon is the per-boot state of the logger application.
type daemon struct {
	l    *Logger
	dev  *phone.Device
	k    *symbos.Kernel
	proc *symbos.Process

	appArch  *symbos.Session
	dbLog    *symbos.Session
	sysAgent *symbos.Session
	files    *symbos.FileSession

	heartbeat *symbos.ActiveObject
	hbTimer   *symbos.Timer
	runApp    *symbos.ActiveObject
	raTimer   *symbos.Timer
	logEngine *symbos.ActiveObject
	leTimer   *symbos.Timer
	powerMgr  *symbos.ActiveObject
	battProp  *symbos.Property

	// Scratch encode buffers: every heartbeat and record append reuses
	// them instead of allocating a payload and a frame per write. The
	// daemon is single-threaded (one engine), and the file server copies
	// what it stores, so reuse is safe.
	payload []byte
	buf     []byte
}

// startDaemon launches the logger application on the freshly booted kernel.
func (l *Logger) startDaemon(d *phone.Device) {
	k := d.Kernel()
	dm := &daemon{l: l, dev: d, k: k}
	dm.proc = k.StartProcess("FailureLogger", false)
	t := dm.proc.Main()
	dm.appArch = d.AppArchServer().Connect(t)
	dm.dbLog = d.DBLogServer().Connect(t)
	dm.sysAgent = d.SysAgentServer().Connect(t)
	dm.files = d.FileServer().Connect(t)

	// Boot-time work of the Panic Detector: repair the Log File from its
	// on-flash bytes (a battery pull can tear the last append), classify
	// how the previous session ended from the last heartbeat record,
	// consolidate a boot record, and reset the heartbeat.
	k.Exec(t, "logger-boot", func() {
		recovered := dm.recoverLog()
		dm.consolidateBoot(recovered)
		dm.writeBeat(BeatAlive)
	})

	// Heartbeat AO: the highest-priority active object, re-arming its own
	// RTimer every period.
	dm.heartbeat = t.NewActiveObject("Heartbeat", 10, func(int) {
		dm.writeBeat(BeatAlive)
		dm.hbTimer.After(l.cfg.HeartbeatPeriod)
	})
	dm.hbTimer = symbos.NewTimer(dm.heartbeat)
	k.Exec(t, "logger-arm-heartbeat", func() { dm.hbTimer.After(l.cfg.HeartbeatPeriod) })

	// Running Applications Detector AO.
	dm.runApp = t.NewActiveObject("RunningApplicationsDetector", 5, func(int) {
		dm.sampleRunningApps()
		dm.raTimer.After(l.cfg.RunAppPeriod)
	})
	dm.raTimer = symbos.NewTimer(dm.runApp)
	k.Exec(t, "logger-arm-runapp", func() { dm.raTimer.After(l.cfg.RunAppPeriod) })

	// Log Engine AO.
	dm.logEngine = t.NewActiveObject("LogEngine", 5, func(int) {
		dm.collectActivity()
		dm.leTimer.After(l.cfg.ActivityPeriod)
	})
	dm.leTimer = symbos.NewTimer(dm.logEngine)
	k.Exec(t, "logger-arm-logengine", func() { dm.leTimer.After(l.cfg.ActivityPeriod) })

	// Power Manager AO: subscribes to the System Agent's battery property
	// and refreshes the power file on every publication, so a LOWBT
	// shutdown can be told apart from a failure (section 5.1).
	dm.battProp = d.Properties().Attach(symbos.PropBatteryStatus)
	dm.powerMgr = t.NewActiveObject("PowerManager", 5, func(int) {
		dm.recordPower()
		dm.battProp.Subscribe(dm.powerMgr)
	})
	k.Exec(t, "logger-arm-power", func() {
		dm.recordPower()
		dm.battProp.Subscribe(dm.powerMgr)
	})

	// Panic Detector: RDebug notification from the Kernel Server.
	k.SubscribeRDebug(dm.onPanic)

	// Power Manager + Heartbeat shutdown path: when Symbian lets
	// applications complete their tasks before power-off, record why.
	d.RegisterShutdownHook(func(reason phone.ShutdownReason) {
		k.Exec(t, "logger-shutdown", func() {
			switch reason {
			case phone.ReasonLowBattery:
				dm.writeBeat(BeatLowBat)
			case phone.ReasonLoggerOff:
				dm.writeBeat(BeatMAOff)
			default:
				dm.writeBeat(BeatReboot)
			}
		})
	})
}

// maxBeatsBytes caps the append-only heartbeat file; past it the file is
// compacted down to the newest beat (only the last beat matters to the
// boot-time detector).
const maxBeatsBytes = 4 << 10

// writeBeat records the heartbeat on flash, through the file server like
// any other Symbian application. Beats are *appended* as checksummed
// frames rather than rewriting the file in place: a torn append only
// damages the newest frame, and recovery falls back to the previous beat —
// rewriting in place would risk destroying the very record the freeze
// detector depends on.
func (dm *daemon) writeBeat(kind BeatKind) {
	dm.payload = AppendBeat(dm.payload[:0], Beat{Kind: kind, Time: int64(dm.k.Now())})
	dm.buf = AppendFrame(dm.buf[:0], dm.payload)
	frame := dm.buf
	if n, code := dm.files.SizeFile(dm.l.cfg.BeatsPath); code == symbos.KErrNone &&
		n+len(frame) > maxBeatsBytes {
		dm.files.WriteFile(dm.l.cfg.BeatsPath, frame)
		return
	}
	dm.files.AppendFile(dm.l.cfg.BeatsPath, frame)
}

// recoverLog repairs the consolidated Log File from its on-flash bytes:
// intact frames are kept, torn tails truncated, corrupt regions excised.
// The logger sees only what a real logger could see — the repair works
// from flash content, never from simulator ground truth.
func (dm *daemon) recoverLog() Recovery {
	data, code := dm.files.ReadFile(dm.l.cfg.LogPath)
	if code != symbos.KErrNone || len(data) == 0 {
		return Recovery{}
	}
	rec := RecoverLog(data)
	if rec.Dirty {
		dm.files.WriteFile(dm.l.cfg.LogPath, rec.Clean)
	}
	return rec
}

// consolidateBoot reads the last heartbeat record and appends the boot
// record that section 5.2's decision procedure implies, carrying the log
// recovery tally when the previous session's file needed repair.
func (dm *daemon) consolidateBoot(recovered Recovery) {
	now := dm.k.Now()
	rec := Record{
		Kind:      KindBoot,
		Time:      int64(now),
		Boot:      dm.dev.BootCount(),
		OSVersion: dm.dev.OSVersion(),
	}
	if recovered.Dirty {
		rec.LogSalvaged = recovered.Salvaged
		rec.LogLost = recovered.Lost
	}
	if data, code := dm.files.ReadFile(dm.l.cfg.BeatsPath); code == symbos.KErrNone {
		if beat, valid := ParseBeat(data); valid {
			rec.PrevBeat = beat.Kind
			rec.PrevTime = beat.Time
			rec.OffSeconds = now.Sub(sim.Time(beat.Time)).Seconds()
			switch beat.Kind {
			case BeatAlive:
				// Power vanished with no orderly shutdown: the phone was
				// frozen and the battery was pulled.
				rec.Detected = DetectedFreeze
			case BeatReboot:
				rec.Detected = DetectedShutdown
			case BeatLowBat:
				rec.Detected = DetectedLowBattery
			case BeatMAOff:
				rec.Detected = DetectedLoggerOff
			}
		} else {
			rec.Detected = DetectedFirstBoot
		}
	} else {
		rec.Detected = DetectedFirstBoot
	}
	dm.append(rec)
}

// onPanic is the Panic Detector: for every RDebug notification it gathers
// the running applications and the current phone activity, and appends a
// consolidated panic record.
func (dm *daemon) onPanic(p *symbos.Panic) {
	rec := Record{
		Kind:     KindPanic,
		Time:     int64(p.Time),
		Category: string(p.Category),
		PType:    p.Type,
		Apps:     dm.queryRunningApps(),
		Activity: dm.currentActivity(p.Time),
	}
	dm.append(rec)
}

// sampleRunningApps refreshes the runapp file.
func (dm *daemon) sampleRunningApps() {
	apps := dm.queryRunningApps()
	dm.files.WriteFile(dm.l.cfg.RunAppPath, []byte(strings.Join(apps, ",")))
}

// queryRunningApps asks the Application Architecture Server for the
// running application IDs.
func (dm *daemon) queryRunningApps() []string {
	resp, code := dm.appArch.Query(phone.OpListApps, "")
	if code != symbos.KErrNone || resp == "" {
		return nil
	}
	return strings.Split(resp, ",")
}

// collectActivity refreshes the activity file from the Database Log Server.
func (dm *daemon) collectActivity() {
	resp, code := dm.dbLog.Query(phone.OpRecentActivity, "")
	if code != symbos.KErrNone {
		return
	}
	dm.files.WriteFile(dm.l.cfg.ActivityPath, []byte(resp))
}

// recordPower refreshes the power file from the System Agent.
func (dm *daemon) recordPower() {
	if batt, code := dm.sysAgent.Query(phone.OpBatteryStatus, ""); code == symbos.KErrNone {
		dm.files.WriteFile(dm.l.cfg.PowerPath, []byte(batt))
	}
}

// currentActivity resolves the registered activity (voice call or message)
// in progress at the given instant, or "unspecified" — the Database Log
// Server registers only calls and messages (Table 3).
func (dm *daemon) currentActivity(at sim.Time) string {
	resp, code := dm.dbLog.Query(phone.OpRecentActivity, "")
	if code != symbos.KErrNone {
		return "unspecified"
	}
	for _, rec := range phone.DecodeActivity(resp) {
		if rec.Start.After(at) {
			continue
		}
		if rec.Ongoing() || !rec.End.Before(at) {
			return string(rec.Kind)
		}
	}
	return "unspecified"
}

// append adds a record to the consolidated Log File as a checksummed
// frame, rotating when the flash budget is exhausted.
func (dm *daemon) append(rec Record) {
	dm.payload = AppendRecord(dm.payload[:0], rec)
	dm.buf = AppendFrame(dm.buf[:0], dm.payload)
	frame := dm.buf
	if n, code := dm.files.SizeFile(dm.l.cfg.LogPath); code == symbos.KErrNone &&
		n+len(frame) > dm.l.cfg.MaxLogBytes {
		// Rotation is the one path that still has to materialise the
		// file: it keeps the newest half of the records.
		if data, rcode := dm.files.ReadFile(dm.l.cfg.LogPath); rcode == symbos.KErrNone {
			dm.files.WriteFile(dm.l.cfg.LogPath, rotateFramed(data, dm.l.cfg.MaxLogBytes/2))
		}
	}
	dm.files.AppendFile(dm.l.cfg.LogPath, frame)
}

// rotate drops the oldest records so at most keep bytes remain, cutting at
// a record (line) boundary so the survivor still parses.
func rotate(data []byte, keep int) []byte {
	if len(data) <= keep {
		return data
	}
	cut := len(data) - keep
	for cut < len(data) && data[cut-1] != '\n' {
		cut++
	}
	return append([]byte(nil), data[cut:]...)
}
