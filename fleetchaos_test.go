package symfail

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
)

// fleetChaosConfig is killChaosConfig with the collection tier sharded:
// three servers behind the device-hash router, fleet-level kill subsets
// drawn every 6-18 routed requests (any combination of shards and the
// router, at any crashpoint including the handoff/rebalance aborts), one
// shard joining after ~50 requests and one leaving after ~150 — a
// scale-up and a scale-down in the middle of the crossfire. Workers:4
// keeps the sharded engine in the mix — `make chaos-fleet` runs this
// under -race.
func fleetChaosConfig(seed uint64) FieldStudyConfig {
	cfg := killChaosConfig(seed)
	cfg.Servers = 3
	cfg.Adversity.FleetJoinAfter = 50
	cfg.Adversity.FleetLeaveAfter = 150
	return cfg
}

// TestFleetKillAnythingNoAcknowledgedDataLoss is PR 4's tentpole invariant
// lifted to the fleet: network faults, flash faults, shard kills, router
// kills, aborted handoffs and live membership churn all at once — and
// still, every record any incarnation of any shard ever acknowledged is
// present exactly once in the merged dataset.
func TestFleetKillAnythingNoAcknowledgedDataLoss(t *testing.T) {
	fs, fl, err := RunFieldStudyWithFleet(fleetChaosConfig(20070627))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	if err := fl.Err(); err != nil {
		t.Fatalf("fleet failed to recover: %v", err)
	}
	// With write quorum W < R the last ACK can return while a lagging
	// replica incarnation is still mid-restart; let it land.
	fl.Quiesce(5 * time.Second)
	// The run must have been adversarial on every fleet axis.
	if fl.Crashes() == 0 {
		t.Fatal("no shard crashes injected — the fleet harness is not killing anything")
	}
	if fl.Restarts() != fl.Crashes() {
		t.Errorf("crashes %d != restarts %d: a shard incarnation never came back",
			fl.Crashes(), fl.Restarts())
	}
	if fl.RouterKills() == 0 {
		t.Error("the router was never drawn into a kill subset")
	}
	if fl.RouterRestarts() != fl.RouterKills() {
		t.Errorf("router kills %d != router restarts %d", fl.RouterKills(), fl.RouterRestarts())
	}
	if fl.Handoffs() == 0 {
		t.Error("no dying shard ever handed state to a peer")
	}
	if got := fl.Epoch(); got < 2 {
		t.Errorf("epoch %d after a join and a leave, want >= 2", got)
	}
	if fl.Migrated() == 0 {
		t.Error("join/leave rebalancing migrated no devices")
	}

	for _, d := range fs.Fleet.Devices {
		id := d.ID()
		counts := make(map[string]int)
		for _, r := range fs.Dataset.Records(id) {
			counts[string(core.EncodeRecord(r))]++
		}
		acked := fl.AckedKeys(id)
		if len(acked) == 0 {
			t.Errorf("%s: no record was ever acknowledged", id)
		}
		missing, duplicated := 0, 0
		for _, key := range acked {
			switch counts[key] {
			case 1:
			case 0:
				missing++
			default:
				duplicated++
			}
		}
		if missing > 0 || duplicated > 0 {
			t.Errorf("%s: of %d acknowledged records, %d missing and %d duplicated after %d shard crashes and %d router kills",
				id, len(acked), missing, duplicated, fl.Crashes(), fl.RouterKills())
		}
	}

	// Recovery and handoff may only ever surface well-formed records.
	for id, recs := range fs.Dataset.AllRecords() {
		for _, r := range recs {
			if r.Kind != core.KindBoot && r.Kind != core.KindPanic {
				t.Errorf("%s: unknown record kind %q surfaced from fleet recovery: %+v", id, r.Kind, r)
			}
		}
	}
}

// computeFleetCrashFingerprint is computeServerCrashFingerprint on the
// fleet path: with Servers:1 it must be the exact PR 4 collector, so the
// golden fingerprint it produces must be byte-identical to the pinned one.
func computeFleetCrashFingerprint(t *testing.T, workers, servers int) crashFingerprint {
	t.Helper()
	cfg := serverCrashStudyConfig()
	cfg.Workers = workers
	cfg.Servers = servers
	fs, fl, err := RunFieldStudyWithFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if err := fl.Err(); err != nil {
		t.Fatal(err)
	}
	rep := fs.Study.MTBF()
	fp := crashFingerprint{
		Crashes:     fl.Crashes(),
		Restarts:    fl.Restarts(),
		Compactions: fl.Compactions(),
	}
	fp.Panics = len(fs.Study.Panics())
	fp.Freezes = rep.Freezes
	fp.SelfShutdowns = rep.SelfShutdowns
	fp.ObservedHours = rep.ObservedHours
	for _, d := range fs.Fleet.Devices {
		fp.Boots += d.BootCount()
		fp.TornWrites += d.FS().TornWrites()
		fp.BitFlips += d.FS().BitFlips()
	}
	if ps := fs.Study.Panics(); len(ps) > 0 {
		fp.FirstPanicKey = ps[0].Key()
		fp.FirstPanicAt = int64(ps[0].Time)
	}
	for _, l := range fs.Loggers {
		fp.LogBytes += len(l.LogBytes())
	}
	for _, id := range fs.Dataset.Devices() {
		for _, r := range fs.Dataset.Records(id) {
			fp.Salvaged += r.LogSalvaged
			fp.Lost += r.LogLost
		}
	}
	fp.DatasetCRC = fs.Dataset.CRC32C()
	return fp
}

// TestFleetServers1DegeneratesToServerCrashGolden: a one-server fleet is
// not "approximately" the PR 4 collector — it is the PR 4 collector. Same
// construction, same RNG consumption, no router in the path: the whole
// crash fingerprint, dataset CRC included, must be byte-identical to the
// pinned server-crash golden.
func TestFleetServers1DegeneratesToServerCrashGolden(t *testing.T) {
	path := filepath.Join("testdata", "golden_fingerprint_servercrash.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no server-crash golden (run `go test -run Golden -update .`): %v", err)
	}
	got := computeFleetCrashFingerprint(t, 1, 1)
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if !bytes.Equal(blob, want) {
		t.Errorf("one-server fleet drifted from the PR 4 golden.\n got: %s\nwant: %s\n"+
			"The degenerate path must construct the exact single supervisor with the exact RNG stream.",
			blob, want)
	}
}

// TestFleetEquivalenceSweep is the acceptance sweep: for both pinned golden
// studies, every server count in {1,2,3,5} and workers 1/2/4/8 — with a
// join and a leave armed whenever there is a router to count requests —
// the merged dataset CRC32C equals the pinned golden's DatasetCRC. Kills,
// handoffs, rebalances and sharding are all invisible in the collected
// bytes; that is the fleet's whole contract.
func TestFleetEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("32 study runs; skipped in -short")
	}
	goldens := []struct {
		name string
		cfg  func() FieldStudyConfig
		file string
	}{
		{"adversity", adversityStudyConfig, "golden_fingerprint_adversity.json"},
		{"servercrash", serverCrashStudyConfig, "golden_fingerprint_servercrash.json"},
	}
	for _, g := range goldens {
		var pinned struct {
			DatasetCRC uint32 `json:"datasetCRC"`
		}
		blob, err := os.ReadFile(filepath.Join("testdata", g.file))
		if err != nil {
			t.Fatalf("no %s golden: %v", g.name, err)
		}
		if err := json.Unmarshal(blob, &pinned); err != nil {
			t.Fatal(err)
		}
		for _, servers := range []int{1, 2, 3, 5} {
			for _, workers := range []int{1, 2, 4, 8} {
				t.Run(fmt.Sprintf("%s/servers=%d/workers=%d", g.name, servers, workers), func(t *testing.T) {
					cfg := g.cfg()
					cfg.Workers = workers
					cfg.Servers = servers
					if servers > 1 {
						cfg.Adversity.FleetJoinAfter = 40
						cfg.Adversity.FleetLeaveAfter = 120
					}
					fs, fl, err := RunFieldStudyWithFleet(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer fl.Close()
					if err := fl.Err(); err != nil {
						t.Fatal(err)
					}
					if got := fs.Dataset.CRC32C(); got != pinned.DatasetCRC {
						t.Errorf("dataset CRC %d != pinned %s golden %d — sharding/kills/rebalancing leaked into the collected bytes",
							got, g.name, pinned.DatasetCRC)
					}
				})
			}
		}
	}
}

// TestFleetSweepTable measures what fleet adversity costs: for a fixed
// study, sweep kill rate × server count and tabulate crashes, router
// kills, handoffs, migrations and the recovered record count. Every cell's
// dataset CRC must equal the kill-free single-server baseline — the source
// of the EXPERIMENTS.md fleet-kill table.
func TestFleetSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated uploads; skipped in -short")
	}
	type row struct {
		servers, killEvery          int
		crashes, routerKills        int
		handoffs, aborted, migrated int
		records                     int
		crc                         uint32
	}
	var rows []row
	for _, servers := range []int{1, 2, 3, 5} {
		for _, k := range []int{0, 24, 6} {
			cfg := adversityStudyConfig()
			cfg.Seed = 555555
			cfg.Workers = 1
			cfg.Servers = servers
			if servers > 1 {
				cfg.Adversity.FleetJoinAfter = 40
				cfg.Adversity.FleetLeaveAfter = 120
			}
			if k > 0 {
				cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: k / 2, KillEveryMax: k + k/2}
				cfg.Adversity.ServerCompactWAL = 32 << 10
			}
			fs, fl, err := RunFieldStudyWithFleet(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fl.Err(); err != nil {
				t.Fatal(err)
			}
			r := row{
				servers:     servers,
				killEvery:   k,
				crashes:     fl.Crashes(),
				routerKills: fl.RouterKills(),
				handoffs:    fl.Handoffs(),
				aborted:     fl.HandoffAborts(),
				migrated:    fl.Migrated(),
				crc:         fs.Dataset.CRC32C(),
			}
			for _, recs := range fs.Dataset.AllRecords() {
				r.records += len(recs)
			}
			fl.Close()
			rows = append(rows, r)
		}
	}

	t.Log("| servers | kill every ~N requests | shard crashes | router kills | handoffs | aborted | migrated | records recovered |")
	t.Log("|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		label := "off"
		if r.killEvery > 0 {
			label = fmt.Sprintf("%d", r.killEvery)
		}
		t.Logf("| %d | %s | %d | %d | %d | %d | %d | %d |",
			r.servers, label, r.crashes, r.routerKills, r.handoffs, r.aborted, r.migrated, r.records)
	}

	base := rows[0]
	if base.crashes != 0 || base.routerKills != 0 {
		t.Errorf("baseline row crashed (%d shard, %d router) with injection off", base.crashes, base.routerKills)
	}
	for _, r := range rows[1:] {
		if r.killEvery > 0 && r.crashes == 0 {
			t.Errorf("servers=%d kill-every-%d: no crashes fired", r.servers, r.killEvery)
		}
		if r.crc != base.crc {
			t.Errorf("servers=%d kill-every-%d: dataset CRC %08x != baseline %08x — fleet adversity changed what was collected",
				r.servers, r.killEvery, r.crc, base.crc)
		}
		if r.records != base.records {
			t.Errorf("servers=%d kill-every-%d: %d records recovered, baseline had %d",
				r.servers, r.killEvery, r.records, base.records)
		}
	}
}
