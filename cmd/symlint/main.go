// Command symlint statically enforces the simulator's determinism and
// panic-taxonomy contracts. It is built on the standard library only
// (go/ast, go/parser, go/token, go/types); see internal/lint for the
// analyzers and DESIGN.md for the contracts.
//
// Usage:
//
//	symlint [-list] [-json] [package patterns]
//
// Patterns are module-relative: "./...", "./internal/...", "./internal/sim".
// With no patterns, "./..." is assumed. Diagnostics are printed one per
// line as "file:line: analyzer: message"; with -json they are emitted
// instead as a single JSON array of objects with the fields file, line,
// col, analyzer, message, and chain (the interprocedural call chain, when
// one exists). The exit status is the same either way: 1 when any
// diagnostic is reported, 2 on a load or usage error, and 0 otherwise.
// Suppress a single finding with an explicit, reasoned escape hatch on the
// offending line or the line above:
//
//	//symlint:allow <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"symfail/internal/lint"
)

// jsonDiag is the machine-readable diagnostic shape, consumed by the CI
// problem matcher and archived as a build artifact.
type jsonDiag struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array instead of text lines")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: symlint [-list] [-json] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	modRoot, err := lint.FindModRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	if *jsonOut {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     filepath.ToSlash(relPath(cwd, d.Pos.Filename)),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
				Chain:    d.Chain,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "symlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			d.Pos.Filename = relPath(cwd, d.Pos.Filename)
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "symlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || len(rel) > len(path) {
		return path
	}
	return rel
}
