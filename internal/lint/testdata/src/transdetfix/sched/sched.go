// Package sched is the unrestricted middle layer of the
// transitive-determinism fixture: it looks harmless but forwards into the
// wall clock.
package sched

import "symfail/internal/lint/testdata/src/transdetfix/clock"

// Next forwards to the wall clock — the leak the engine must not reach.
func Next() int64 { return clock.Wall() }

// Deadline is pure; calling it from restricted code is fine.
func Deadline(d int64) int64 { return d * 2 }
