package phone

import (
	"math"
	"testing"
	"time"

	"symfail/internal/sim"
)

func TestNightShutdownsClusterAtSleepHour(t *testing.T) {
	d, eng := newTestDevice(t, 41, func(c *Config) {
		c.NightOffProb = 1 // every night
		c.DayOffPerHour = 0
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
	})
	if err := eng.Run(sim.Epoch.Add(10 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	var nightOffs int
	for _, e := range d.Oracle().Events {
		if e.Kind == TruthUserShutdown && e.Cause == "night" {
			nightOffs++
			// Shutdown must happen around the sleep hour (23:15 config,
			// with some jitter).
			h := e.Time.TimeOfDay().Hours()
			if h < d.cfg.SleepHour-0.5 || h > d.cfg.SleepHour+2 {
				t.Errorf("night off at hour %.2f", h)
			}
		}
	}
	if nightOffs < 8 {
		t.Errorf("night offs = %d over 10 days with prob 1", nightOffs)
	}
}

func TestNightOffDurationAround30000Seconds(t *testing.T) {
	d, eng := newTestDevice(t, 43, func(c *Config) {
		c.NightOffProb = 1
		c.DayOffPerHour = 0
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
	})
	if err := eng.Run(sim.Epoch.Add(20 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	var offs []float64
	events := d.Oracle().Events
	for i, e := range events {
		if e.Kind != TruthUserShutdown {
			continue
		}
		for j := i + 1; j < len(events); j++ {
			if events[j].Kind == TruthBoot {
				offs = append(offs, events[j].Time.Sub(e.Time).Seconds())
				break
			}
		}
	}
	if len(offs) < 10 {
		t.Fatalf("only %d night offs", len(offs))
	}
	med := median(offs)
	if math.Abs(med-30000) > 6000 {
		t.Errorf("median night off = %.0f s, want ~30000", med)
	}
}

func TestLowBatteryShutdownHappensWithoutCharging(t *testing.T) {
	d, eng := newTestDevice(t, 47, func(c *Config) {
		c.EveningChargeProb = 0 // never charges in the evening
		c.NightOffProb = 0      // never off overnight (no overnight charge)
		c.DayOffPerHour = 0
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.BatteryDrainPerHour = 0.03 // ~33 h of battery
	})
	if err := eng.Run(sim.Epoch.Add(5 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.Oracle().Count(TruthLowBattery) == 0 {
		t.Error("battery never ran out despite no charging")
	}
}

func TestEveningChargeKeepsPhoneAlive(t *testing.T) {
	d, eng := newTestDevice(t, 53, func(c *Config) {
		c.EveningChargeProb = 1 // charges every evening
		c.NightOffProb = 0
		c.DayOffPerHour = 0
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.BatteryDrainPerHour = 0.03
	})
	if err := eng.Run(sim.Epoch.Add(5 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if got := d.Oracle().Count(TruthLowBattery); got != 0 {
		t.Errorf("low-battery shutdowns = %d despite daily charging", got)
	}
}

func TestLoggerOffProducesLoggerOffReason(t *testing.T) {
	d, eng := newTestDevice(t, 59, func(c *Config) {
		c.DayOffPerHour = 1.0 / 4 // frequent
		c.LoggerOffProb = 1       // always the logger-off variant
		c.NightOffProb = 0
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
	})
	eng.Step() // boot
	var reasons []ShutdownReason
	d.RegisterShutdownHook(func(r ShutdownReason) { reasons = append(reasons, r) })
	if err := eng.Run(sim.Epoch.Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.Oracle().Count(TruthLoggerOff) == 0 {
		t.Fatal("no logger-off events")
	}
	// The first shutdown this boot saw must be the logger-off reason.
	if len(reasons) == 0 || reasons[0] != ReasonLoggerOff {
		t.Errorf("hook reasons = %v", reasons)
	}
}

func TestActivityMixRoughlyFollowsWeights(t *testing.T) {
	d, eng := newTestDevice(t, 61, func(c *Config) {
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.NightOffProb = 0
		c.DayOffPerHour = 0
		c.ActivitiesPerDay = 60 // plenty of samples
	})
	eng.Step()
	counts := make(map[Activity]int)
	total := 0
	// Sample directly from the picker for distribution accuracy.
	for i := 0; i < 20000; i++ {
		counts[d.pickActivity()]++
		total++
	}
	var weightSum float64
	for _, w := range d.cfg.ActivityMix {
		weightSum += w
	}
	for act, w := range d.cfg.ActivityMix {
		want := w / weightSum
		got := float64(counts[act]) / float64(total)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("%s share = %.3f, want ~%.3f", act, got, want)
		}
	}
}

func TestActivitiesOnlyDuringWakingHours(t *testing.T) {
	d, eng := newTestDevice(t, 67, func(c *Config) {
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.NightOffProb = 0
		c.DayOffPerHour = 0
	})
	if err := eng.Run(sim.Epoch.Add(7 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	for _, rec := range d.activityLog {
		h := rec.Start.TimeOfDay().Hours()
		if h < d.cfg.WakeHour-0.01 || h > d.cfg.SleepHour+0.01 {
			t.Errorf("activity started at hour %.2f, outside waking window", h)
		}
	}
	if len(d.activityLog) == 0 {
		t.Error("no registered activities in a week")
	}
}

func TestActivityRecordsCloseOnShutdown(t *testing.T) {
	d, eng := newTestDevice(t, 71, nil)
	eng.Step()
	gen := d.bootGen
	d.beginActivity(gen, ActVoiceCall)
	if d.CurrentActivity() != ActVoiceCall {
		t.Fatal("call did not start")
	}
	d.Shutdown(ReasonUser, time.Hour)
	for _, rec := range d.activityLog {
		if rec.Ongoing() {
			t.Errorf("open activity record after shutdown: %+v", rec)
		}
	}
	if d.CurrentActivity() != ActIdle {
		t.Error("activity survived shutdown")
	}
}

func TestDeviceEventLoadIsBounded(t *testing.T) {
	// Guard against event-queue explosions: a quiet phone-month must stay
	// under a sane number of engine events.
	_, eng := newTestDevice(t, 73, nil)
	if err := eng.Run(sim.Epoch.Add(30 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	perDay := float64(eng.Fired()) / 30
	if perDay > 2500 {
		t.Errorf("%.0f engine events per phone-day (budget: 2500)", perDay)
	}
}

func TestMeanIntervalClampsTinyRates(t *testing.T) {
	if _, ok := meanInterval(0); ok {
		t.Error("zero rate accepted")
	}
	if _, ok := meanInterval(-1); ok {
		t.Error("negative rate accepted")
	}
	if _, ok := meanInterval(1e-9); ok {
		t.Error("once-per-billion-hours rate should be treated as never")
	}
	mean, ok := meanInterval(1.0 / 300)
	if !ok || mean != 300*time.Hour {
		t.Errorf("meanInterval(1/300h) = %v, %v", mean, ok)
	}
	// A rate at the clamp boundary must not overflow.
	mean, ok = meanInterval(1e-6)
	if !ok || mean <= 0 {
		t.Errorf("boundary rate = %v, %v", mean, ok)
	}
}
