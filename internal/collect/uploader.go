package collect

import (
	"hash/crc32"
	"time"

	"symfail/internal/phone"
	"symfail/internal/sim"
)

// UploaderConfig calibrates the hardened uploader.
type UploaderConfig struct {
	// Every is the periodic upload interval in simulated time.
	Every time.Duration
	// RetryBase enables retry-with-backoff when non-zero: after a failed
	// attempt the uploader retries after RetryBase, doubling per
	// consecutive failure up to RetryMax, with multiplicative jitter when
	// Rng is set. Retries are scheduled on the sim clock, between the
	// periodic ticks.
	RetryBase time.Duration
	// RetryMax caps the backoff delay (defaults to Every when zero).
	RetryMax time.Duration
	// Rng drives the retry jitter (a Split() child of the device stream).
	// Nil means deterministic backoff without jitter.
	Rng *sim.Rand
	// Transport carries the bytes; nil means the real NetTransport.
	Transport Transport
}

// Uploader periodically pushes a device's Log File to the collection
// server while the phone is on — the paper's automated software
// infrastructure for transferring Log Files from the phones [1]. Uploads
// are resumable: the uploader tracks the server-acknowledged offset and
// ships only the tail past it, so a long study log is not re-sent on every
// tick and a failed transfer only costs the tail. The server's idempotent
// merge makes re-sends after a lost acknowledgement harmless.
type Uploader struct {
	dev  *phone.Device
	addr string
	path string
	cfg  UploaderConfig

	// acked is how much of the local file the server has acknowledged;
	// ackedCRC is the CRC-32C of that prefix, which detects rotation or a
	// master reset having rewritten history underneath the offset.
	acked    int
	ackedCRC uint32
	// resync asks the next attempt to query the server's offset first —
	// set after any failure, because a lost acknowledgement means the
	// server may be further along than we think.
	resync bool

	attempts     int
	successes    int
	failStreak   int
	retryPending bool
	bytesSent    int64
	lastErr      error
}

// AttachUploader installs a periodic uploader on a device. path is the
// on-flash Log File to ship (the logger's LogPath); every is the upload
// period in simulated time. The schedule is anchored to the collection
// infrastructure, not to the phone's boot cycle: a tick that finds the
// phone off (or frozen) is skipped and the next one fires a period later,
// so reboots never silence the uploads. The TCP transfer itself happens in
// host time inside the simulation event, which is how a transfer that is
// near-instant relative to phone timescales should behave.
func AttachUploader(d *phone.Device, addr, path string, every time.Duration) *Uploader {
	return AttachUploaderWith(d, addr, path, UploaderConfig{Every: every})
}

// AttachUploaderWith installs an uploader with full calibration.
func AttachUploaderWith(d *phone.Device, addr, path string, cfg UploaderConfig) *Uploader {
	if cfg.Transport == nil {
		cfg.Transport = NetTransport{}
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = cfg.Every
	}
	u := &Uploader{dev: d, addr: addr, path: path, cfg: cfg}
	u.loop()
	return u
}

// Attempts returns how many uploads were tried (retries included).
func (u *Uploader) Attempts() int { return u.attempts }

// Successes returns how many uploads the server acknowledged.
func (u *Uploader) Successes() int { return u.successes }

// BytesSent returns the cumulative payload bytes shipped. With resumable
// uploads this tracks the log's growth, not successes × file size.
func (u *Uploader) BytesSent() int64 { return u.bytesSent }

// LastErr returns the most recent upload error. A successful upload clears
// it to nil, so a non-nil value means "currently failing", not "failed
// once ever".
func (u *Uploader) LastErr() error { return u.lastErr }

func (u *Uploader) loop() {
	u.dev.Engine().After(u.cfg.Every, "upload "+u.dev.ID(), func() {
		if u.dev.State() == phone.StateOn {
			u.uploadNow()
		}
		u.loop()
	})
}

// scheduleRetry arms a one-shot retry between periodic ticks, with
// exponential backoff and jitter. Disabled retries (RetryBase zero) and
// backoffs that would land past the next periodic tick are skipped — the
// tick itself is the retry of last resort.
func (u *Uploader) scheduleRetry() {
	if u.cfg.RetryBase <= 0 || u.retryPending {
		return
	}
	delay := u.cfg.RetryBase << (u.failStreak - 1)
	if u.failStreak > 20 || delay > u.cfg.RetryMax || delay <= 0 {
		delay = u.cfg.RetryMax
	}
	if u.cfg.Rng != nil {
		// Jitter in [0.5, 1.5): phones that failed together (a server
		// outage) must not retry in lockstep.
		delay = time.Duration(float64(delay) * (0.5 + u.cfg.Rng.Float64()))
	}
	if delay >= u.cfg.Every {
		return
	}
	u.retryPending = true
	u.dev.Engine().After(delay, "upload-retry "+u.dev.ID(), func() {
		u.retryPending = false
		if u.dev.State() == phone.StateOn {
			u.uploadNow()
		}
	})
}

func (u *Uploader) fail(err error) {
	u.lastErr = err
	u.failStreak++
	u.resync = true
	u.scheduleRetry()
}

func (u *Uploader) uploadNow() {
	data, ok := u.dev.FS().Read(u.path)
	if !ok {
		return // nothing logged yet
	}
	u.attempts++
	// The acknowledged prefix must still be the file's prefix; rotation or
	// a master reset rewrites history and forces a full re-send (the
	// server's merge dedups whatever it already had).
	if u.acked > len(data) || crc32.Checksum(data[:u.acked], castagnoli) != u.ackedCRC {
		u.acked, u.ackedCRC = 0, 0
	}
	if u.resync {
		n, sum, err := u.cfg.Transport.Offset(u.addr, u.dev.ID())
		if err != nil {
			u.fail(err)
			return
		}
		if n <= len(data) && crc32.Checksum(data[:n], castagnoli) == sum {
			// The server is exactly n bytes into our file (a lost ACK
			// left it ahead of our record); resume from there.
			u.acked, u.ackedCRC = n, sum
		} else {
			// The server's stream is not a prefix of our file (master
			// reset, rotation): start the stream over from 0.
			u.acked, u.ackedCRC = 0, 0
		}
		u.resync = false
	}
	tail := data[u.acked:]
	if _, err := u.cfg.Transport.UploadChunk(u.addr, u.dev.ID(), u.acked, tail); err != nil {
		// Flaky networks must not crash the phone; back off and retry.
		u.fail(err)
		return
	}
	u.bytesSent += int64(len(tail))
	u.acked = len(data)
	u.ackedCRC = crc32.Checksum(data, castagnoli)
	u.successes++
	u.failStreak = 0
	u.lastErr = nil
}
