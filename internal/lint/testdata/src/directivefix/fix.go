// Package directivefix is a symlint golden-test fixture for the
// //symlint:allow directive machinery itself.
package directivefix

import "time"

// Negative: a well-formed allow on the line above suppresses the finding.
func allowedAbove() time.Time {
	//symlint:allow determinism fixture demonstrating suppression
	return time.Now()
}

// Negative: a well-formed allow trailing the offending line.
func allowedTrailing() time.Time {
	return time.Now() //symlint:allow determinism trailing form works too
}

// Positive: an allow with no reason is malformed and suppresses nothing.
func missingReason() time.Time {
	//symlint:allow determinism
	return time.Now() // want: wall clock (the malformed allow is inert)
}

// Positive: an unknown verb is malformed.
//symlint:deny determinism nice try

// Positive: an allow that suppresses nothing is stale and must go.
//
//symlint:allow determinism nothing on this line ever trips the analyzer
func harmless() int { return 4 }
