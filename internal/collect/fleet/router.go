// Package fleet lifts the crash-safe collection tier to a sharded
// multi-server ingest fleet: N independent collect.Server instances (each
// with its own WAL and CrashStore, each under its own collect.Supervisor)
// behind a deterministic device-hash Router, with server-to-server record
// handoff when a shard dies and live rebalancing when shards join or leave
// mid-study. The fleet Supervisor extends the single-server kill-anything
// model to killing any RNG-drawn subset of the fleet — router included —
// while preserving PR 4's invariant verbatim: every record any incarnation
// of any shard ever acknowledged appears exactly once in the merged
// dataset, whatever dies. See DESIGN.md §13.
package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"symfail/internal/collect"
)

// Owner picks the owning member for a device by rendezvous (highest random
// weight) hashing: every observer with the same member list agrees on the
// owner without any coordination, and membership changes only move the
// devices whose highest-scoring member actually changed — a join steals
// ~1/N of the devices, a leave redistributes only the leaver's. Returns
// false when members is empty.
func Owner(deviceID string, members []string) (string, bool) {
	best, ok := "", false
	var bestScore uint64
	for _, m := range members {
		s := rendezvousScore(deviceID, m)
		// Ties break toward the lexically smaller member name so the choice
		// stays a pure function of (device, member set).
		if !ok || s > bestScore || (s == bestScore && m < best) {
			best, bestScore, ok = m, s, true
		}
	}
	return best, ok
}

// rendezvousScore is FNV-1a over device then member, with a separator so
// distinct (device, member) pairs cannot collide by concatenation. The
// device goes first deliberately: hashed the other way round, the member
// names' single differing digit feeds the state before a long identical
// device suffix, and FNV's weak per-byte diffusion then yields the same
// winner for every device — one shard owns the whole fleet. Device-first,
// the differing member bytes are the last mixed in and the scores spread.
func rendezvousScore(deviceID, member string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, deviceID)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, member)
	return h.Sum64()
}

// Router is the fleet's front door: an L7 proxy that reads one protocol
// header, routes the connection to the shard owning the device, and pumps
// bytes both ways. Uploaders keep talking to one pinned address whatever
// the fleet does behind it; when routing moves a device between shards the
// uploader renegotiates through the existing OFFSET protocol (a gap error
// makes it resync), so no client-side changes are needed.
//
// The router is itself a kill target: killing it drops the listener and
// every in-flight connection without replies — clients see dead
// connections and retry — and the fleet rebinds a fresh router on the same
// address.
type Router struct {
	listener net.Listener
	hooks    routerHooks

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

// routerHooks are the fleet callbacks a router incarnation is built around.
// route and begin are mandatory for a fleet router; the rest are nil on the
// replication-free (R=1) fleet, which keeps that path byte-identical to the
// pre-quorum router.
type routerHooks struct {
	// route resolves a device to the owning shard's address under the
	// fleet's current epoch; begin is the fleet's per-request hook and
	// reports whether the router itself was selected to die on this request.
	route func(deviceID string) (string, bool)
	begin func() bool
	// gate, when set, may refuse a write verb before any shard is touched —
	// the fleet's below-quorum rejection. The returned error text goes to
	// the client as a retryable ERR.
	gate func(verb string) error
	// blocked, when set, simulates a network partition between this router
	// and a shard: a true return means the forward attempt fails without a
	// dial ever happening (the shard itself stays healthy and reachable
	// from its peers).
	blocked func(addr string) bool
	// observe, when set, feeds the fleet's failure detector: every forward
	// attempt's outcome against a shard address, success or miss.
	observe func(addr string, ok bool)
}

// routedVerbs are the headers the router understands; everything carries
// the device ID as its second field.
func routedVerb(v string) bool {
	switch v {
	case "UPLOAD", "CHUNK", "OFFSET", "FIN", "HANDOFF":
		return true
	}
	return false
}

// newRouter starts a router on addr ("127.0.0.1:0" picks a free port).
func newRouter(addr string, hooks routerHooks) (*Router, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: router listen: %w", err)
	}
	rt := &Router{listener: l, hooks: hooks, conns: make(map[net.Conn]struct{})}
	rt.wg.Add(1)
	go rt.acceptLoop()
	return rt, nil
}

// Addr returns the router's listen address.
func (rt *Router) Addr() string { return rt.listener.Addr().String() }

func (rt *Router) acceptLoop() {
	defer rt.wg.Done()
	for {
		conn, err := rt.listener.Accept()
		if err != nil {
			return // listener closed
		}
		if !rt.track(conn) {
			_ = conn.Close()
			return
		}
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.handle(conn)
		}()
	}
}

// track registers a connection for kill-time teardown; false once killed.
func (rt *Router) track(conn net.Conn) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return false
	}
	rt.conns[conn] = struct{}{}
	return true
}

func (rt *Router) forget(conn net.Conn) {
	rt.mu.Lock()
	delete(rt.conns, conn)
	rt.mu.Unlock()
}

func (rt *Router) handle(conn net.Conn) {
	defer rt.forget(conn)
	defer conn.Close()
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return
	}
	br := bufio.NewReader(conn)
	header, err := readLine(br, collect.MaxHeaderBytes)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	fields := strings.Fields(header)
	if len(fields) < 2 || !routedVerb(fields[0]) {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	if rt.hooks.begin != nil && rt.hooks.begin() {
		// The router was drawn into this request's kill subset: the fleet
		// has already torn this router down and rebound a fresh one; this
		// connection dies without a reply, like any crashed process.
		return
	}
	// Buffer the declared body before touching a shard: with header and
	// body in hand the router can replay the request against the shard's
	// replacement when a kill lands mid-request, making a shard crash as
	// invisible to the client as the protocol allows. Every verb is
	// idempotent on the shard (merges are canonical, chunk appends are
	// positional), so a replay after a post-commit crash is harmless.
	n := 0
	switch fields[0] {
	case "UPLOAD":
		if len(fields) == 4 {
			n, _ = strconv.Atoi(fields[2])
		}
	case "CHUNK", "HANDOFF":
		if len(fields) == 5 {
			n, _ = strconv.Atoi(fields[3])
		}
	}
	if n < 0 || n > collect.MaxUploadBytes {
		fmt.Fprint(conn, "ERR bad size\n")
		return
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(br, body); err != nil {
		fmt.Fprintf(conn, "ERR short body: %v\n", err)
		return
	}
	// The below-quorum gate runs after the body is buffered: the client has
	// finished writing and is reading for a reply, so the retryable ERR
	// actually reaches it instead of racing a mid-body connection reset.
	if rt.hooks.gate != nil {
		if err := rt.hooks.gate(fields[0]); err != nil {
			fmt.Fprintf(conn, "ERR %v\n", err)
			return
		}
	}
	reply, ok := rt.forward(fields[1], header, body)
	if !ok {
		fmt.Fprint(conn, "ERR shard unavailable\n")
		return
	}
	_, _ = conn.Write(reply)
}

// forward delivers one buffered request to the device's shard and returns
// the reply, riding out shard crashes: a dead upstream connection or a
// refused dial means the shard is mid-restart (recovery plus crash
// handoff can span hundreds of host milliseconds), so the router re-routes
// — a leave may have moved the device — re-dials and replays. A reply is
// only trusted when terminated by the protocol's newline; a truncated one
// (the shard died while replying) is retried like any other failure.
func (rt *Router) forward(dev, header string, body []byte) ([]byte, bool) {
	for attempt := 0; attempt < 250; attempt++ {
		if attempt > 0 {
			// Host-time pause while a real shard rebinds; the simulation
			// never observes it.
			//symlint:allow determinism host-time pause while a real TCP shard rebinds
			time.Sleep(5 * time.Millisecond)
		}
		addr, ok := rt.hooks.route(dev)
		if !ok {
			return nil, false
		}
		if rt.hooks.blocked != nil && rt.hooks.blocked(addr) {
			// Partitioned: the shard may be perfectly healthy, but this
			// router cannot reach it. The miss feeds the failure detector,
			// which will suspect the shard and re-route the next attempt.
			rt.observe(addr, false)
			continue
		}
		up, err := net.DialTimeout("tcp", addr, 10*time.Second)
		if err != nil {
			rt.observe(addr, false)
			continue
		}
		if !rt.track(up) {
			_ = up.Close()
			return nil, false // the router itself was killed mid-request
		}
		reply := rt.attempt(up, header, body)
		rt.forget(up)
		_ = up.Close()
		if len(reply) > 0 && reply[len(reply)-1] == '\n' {
			rt.observe(addr, true)
			return reply, true
		}
		rt.observe(addr, false)
	}
	return nil, false
}

// observe forwards a per-attempt outcome to the fleet's failure detector —
// probe-on-traffic, so suspicion can land inside a single forward loop
// instead of waiting for the next heartbeat round.
func (rt *Router) observe(addr string, ok bool) {
	if rt.hooks.observe != nil {
		rt.hooks.observe(addr, ok)
	}
}

// attempt runs one request/reply exchange against a shard; a nil or
// truncated reply means the shard died on us.
func (rt *Router) attempt(up net.Conn, header string, body []byte) []byte {
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := up.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return nil
	}
	if _, err := fmt.Fprintf(up, "%s\n", header); err != nil {
		return nil
	}
	if len(body) > 0 {
		if _, err := up.Write(body); err != nil {
			return nil
		}
	}
	// The shard replies one line and closes; read to EOF and let the
	// newline check decide whether the reply is whole.
	reply, _ := io.ReadAll(up)
	return reply
}

// readLine mirrors the server's bounded header read.
func readLine(r *bufio.Reader, max int) (string, error) {
	var line []byte
	for len(line) < max {
		c, err := r.ReadByte()
		if err != nil {
			return "", fmt.Errorf("short header: %v", err)
		}
		if c == '\n' {
			return string(line), nil
		}
		line = append(line, c)
	}
	return "", errors.New("header too long")
}

// kill tears the router down the way a crash would: listener and every
// in-flight connection closed, no replies, no draining. Safe to call from
// one of the router's own handler goroutines (it does not wait for them).
func (rt *Router) kill() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	conns := make([]net.Conn, 0, len(rt.conns))
	for c := range rt.conns {
		//symlint:allow maporder closing a set of sockets is order-independent and the set itself is host-scheduling state
		conns = append(conns, c)
	}
	rt.conns = make(map[net.Conn]struct{})
	rt.mu.Unlock()
	_ = rt.listener.Close()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Close shuts the router down and waits for in-flight handlers.
func (rt *Router) Close() error {
	rt.kill()
	rt.wg.Wait()
	return nil
}

// sortedKeys returns m's keys in sorted order (deterministic iteration).
func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
