package symbos

import (
	"fmt"
	"sort"

	"symfail/internal/sim"
)

// PanicHandler is the kernel's recovery policy hook. The device layer
// installs one to decide, per panic, whether to terminate the offending
// application, reboot the phone, or freeze (section 2: "information
// associated with a panic is delivered to the kernel, which decides on the
// recovery action"). Handlers must not re-enter the kernel synchronously;
// they should record the panic and schedule any recovery via the engine.
//
// When no handler is installed the kernel applies the default policy:
// terminate the panicking process.
type PanicHandler func(*Panic, *Process)

// Kernel is one booted instance of the simulated OS. The device layer
// creates a fresh Kernel on every boot; freezing the phone halts the kernel
// so that nothing (including the logger's heartbeat) runs until reboot.
type Kernel struct {
	eng     *sim.Engine
	procs   map[string]*Process
	current *Thread
	rdebug  []func(*Panic)
	handler PanicHandler
	halted  bool

	// ViewSrvTimeout is how long a single RunL may monopolise an
	// active scheduler before the View Server declares the application
	// unresponsive (ViewSrv 11). The real server uses ~10 s.
	ViewSrvTimeout sim.Duration

	panicsRaised int
}

// NewKernel boots a kernel on the given engine.
func NewKernel(eng *sim.Engine) *Kernel {
	return &Kernel{
		eng:            eng,
		procs:          make(map[string]*Process),
		ViewSrvTimeout: 10e9, // 10 s in nanoseconds
	}
}

// Engine returns the discrete-event engine driving this kernel.
func (k *Kernel) Engine() *sim.Engine { return k.eng }

// Now returns the current virtual time.
func (k *Kernel) Now() sim.Time { return k.eng.Now() }

// Halted reports whether the kernel has been frozen.
func (k *Kernel) Halted() bool { return k.halted }

// Halt freezes the kernel: every subsequent Exec becomes a no-op, which is
// exactly what a phone freeze looks like from software (section 4: "the
// device's output becomes constant and the device does not respond").
func (k *Kernel) Halt() { k.halted = true }

// PanicsRaised returns the number of panics dispatched since boot.
func (k *Kernel) PanicsRaised() int { return k.panicsRaised }

// SetPanicHandler installs the recovery policy hook.
func (k *Kernel) SetPanicHandler(h PanicHandler) { k.handler = h }

// SubscribeRDebug registers a callback invoked for every panic delivered to
// the kernel. This models the RDebug notification service of the Kernel
// Server that the paper's Panic Detector exploits (section 5.1).
func (k *Kernel) SubscribeRDebug(fn func(*Panic)) { k.rdebug = append(k.rdebug, fn) }

// StartProcess creates a process with a single main thread. system marks
// critical system servers, whose panics the paper observes to reboot the
// phone rather than merely terminating an application.
func (k *Kernel) StartProcess(name string, system bool) *Process {
	if old, ok := k.procs[name]; ok && old.alive {
		panic(fmt.Sprintf("symbos: duplicate process %q", name))
	}
	p := &Process{
		name:   name,
		system: system,
		alive:  true,
		kernel: k,
		heap:   newHeap(k, defaultHeapLimit),
		objs:   make(map[Handle]*KObject),
	}
	p.main = p.SpawnThread(name + "::Main")
	k.procs[name] = p
	return p
}

// Process returns the named process, or nil.
func (k *Kernel) Process(name string) *Process { return k.procs[name] }

// Processes returns all live processes in deterministic (name) order.
func (k *Kernel) Processes() []*Process {
	names := make([]string, 0, len(k.procs))
	for n, p := range k.procs {
		if p.alive {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	out := make([]*Process, 0, len(names))
	for _, n := range names {
		out = append(out, k.procs[n])
	}
	return out
}

// TerminateProcess kills a process: its threads stop, its pending active
// object completions are discarded, and it disappears from the running set.
func (k *Kernel) TerminateProcess(p *Process) {
	if p == nil || !p.alive {
		return
	}
	p.alive = false
	for _, t := range p.threads {
		t.scheduler.shutdown()
	}
}

// Exec runs fn in the context of thread t, establishing the panic boundary:
// any Symbian panic raised inside fn is recovered here, delivered to the
// kernel (RDebug subscribers first, then the recovery policy), and returned.
// A nil return means fn completed without panicking. Exec on a halted
// kernel or a dead process/thread is a no-op.
func (k *Kernel) Exec(t *Thread, label string, fn func()) (p *Panic) {
	if k.halted || t == nil || !t.proc.alive {
		return nil
	}
	prev := k.current
	k.current = t
	defer func() {
		k.current = prev
		r := recover()
		if r == nil {
			return
		}
		pan, ok := r.(*Panic)
		if !ok {
			if lv, isLeave := r.(leave); isLeave {
				// A leave escaping all traps means the thread had no
				// trap handler installed (E32USER-CBase 69 in practice).
				pan = &Panic{
					Category: CatE32UserCBase,
					Type:     TypeNoTrapHandler,
					Reason:   "leave " + ErrName(lv.code) + " with no trap handler installed",
					Time:     k.eng.Now(),
					Process:  t.proc.name,
					Thread:   t.name,
					System:   t.proc.system,
				}
			} else {
				panic(r) // a genuine Go bug in the simulator: do not mask
			}
		}
		k.dispatch(pan)
		p = pan
	}()
	fn()
	return nil
}

// Raise signals a panic from the currently executing thread. It must be
// called from inside an Exec context; the surrounding Exec recovers it.
func (k *Kernel) Raise(cat Category, typ int, reason string) {
	p := &Panic{
		Category: cat,
		Type:     typ,
		Reason:   reason,
		Time:     k.eng.Now(),
	}
	if k.current != nil {
		p.Process = k.current.proc.name
		p.Thread = k.current.name
		p.System = k.current.proc.system
	} else {
		p.Process = "?"
		p.Thread = "?"
	}
	panic(p)
}

// dispatch delivers a recovered panic: RDebug subscribers see it first (the
// Panic Detector), then the recovery policy decides what happens.
func (k *Kernel) dispatch(p *Panic) {
	k.panicsRaised++
	for _, fn := range k.rdebug {
		fn(p)
	}
	if k.handler != nil {
		k.handler(p, k.procs[p.Process])
		return
	}
	if proc := k.procs[p.Process]; proc != nil {
		k.TerminateProcess(proc)
	}
}
