package fleet

import (
	"fmt"

	"symfail/internal/collect"
)

// Heartbeat failure detection (DESIGN.md §15). The fleet detects its own
// shard failures instead of being told about them by an omniscient
// supervisor: every beatEvery routed requests (plus BeatRng jitter) the
// request that trips the countdown carries one beat round — a PING to every
// member — and every routed forward attempt doubles as a probe via the
// router's observe hook. Consecutive misses raise suspicion (φ-style
// accrual collapsed to a counter: the beat cadence is fixed in
// request-time, so the miss count is the phi); a suspected shard is routed
// around and skipped as a replication target, and a successful probe
// clears it. Confirmation — the epoch-bumping declaration of death —
// additionally requires process-level evidence (a power cut, a restart
// loop that gave up), so a healthy-but-slow or partitioned shard can be
// suspected forever but never declared dead.

// runBeat carries one beat round: probe every snapshot member, feed the
// results to the detector, then re-arm the countdown. Runs on a routed
// request's handler goroutine with no fleet locks held; the `beating` flag
// keeps rounds from overlapping.
func (f *Supervisor) runBeat(probes []*member) {
	for _, m := range probes {
		f.noteProbe(m, f.probe(m))
	}
	f.mu.Lock()
	f.beating = false
	f.redrawBeatLocked()
	f.mu.Unlock()
}

// probe is one heartbeat: a PING over the same network position the router
// holds, so a partition that blinds the router blinds the prober too —
// that is what makes partition and crash indistinguishable from here, and
// why suspicion alone must never be a death sentence.
func (f *Supervisor) probe(m *member) bool {
	f.mu.Lock()
	partitioned := m.partitioned
	addr := m.sup.Addr()
	f.mu.Unlock()
	if partitioned {
		return false
	}
	return collect.Ping(addr) == nil
}

// redrawBeatLocked re-arms the beat countdown: beatEvery requests plus a
// jitter draw from the dedicated beat stream. The jitter keeps beat rounds
// from phase-locking with periodic workloads; its RNG is isolated so beat
// cadence can never perturb kill schedules or device streams.
func (f *Supervisor) redrawBeatLocked() {
	f.untilBeat = f.beatEvery
	if f.beatRng != nil {
		f.untilBeat += f.beatRng.Intn(f.beatEvery/2 + 1)
	}
}

// observe is the router's per-forward-attempt feedback (routerHooks.observe):
// routed traffic doubles as probing, so a dead or unreachable shard is
// suspected within a few attempts of the forward loop that discovered it —
// which then re-routes — instead of waiting out a beat period.
func (f *Supervisor) observe(addr string, ok bool) {
	f.mu.Lock()
	m := f.memberByAddrLocked(addr)
	f.mu.Unlock()
	if m != nil {
		f.noteProbe(m, ok)
	}
}

// noteProbe folds one probe outcome into the detector. Called with no
// fleet locks held.
func (f *Supervisor) noteProbe(m *member, ok bool) {
	f.mu.Lock()
	if f.disarmed || !m.live {
		f.mu.Unlock()
		return
	}
	if ok {
		m.misses = 0
		if m.suspected {
			m.suspected = false
			f.updateQuorumLocked()
		}
		f.mu.Unlock()
		return
	}
	m.misses++
	suspect := m.misses >= f.suspectAfter && !m.suspected
	if suspect {
		m.suspected = true
		f.suspicions++
		f.updateQuorumLocked()
	}
	confirm := m.misses >= f.confirmAfter && (m.cut || m.sup.Err() != nil)
	addr := m.sup.Addr()
	partitioned := m.partitioned
	f.mu.Unlock()
	if suspect && !partitioned {
		// Ground-truth the suspicion with one direct probe that bypasses
		// any router-side partition simulation: if the shard answers, the
		// detector just suspected a healthy process — count it. (Under a
		// simulated partition the direct probe would succeed vacuously, so
		// the partitioned case is counted false by definition instead.)
		if collect.Ping(addr) == nil {
			f.countFalseSuspicion()
		}
	} else if suspect && partitioned {
		f.countFalseSuspicion()
	}
	if confirm {
		f.confirmDead(m)
	}
}

func (f *Supervisor) countFalseSuspicion() {
	f.mu.Lock()
	f.falseSusp++
	f.mu.Unlock()
}

// confirmDead declares a shard dead: membership epoch bumps (uploaders
// renegotiate via OFFSET like any rebalance) and anti-entropy repair
// re-replicates every device the corpse's dataset names, restoring the
// replication level its loss degraded. The dataset itself may be gone (a
// power cut) — repair then works from the surviving copies, which is
// exactly what write-time replication guarantees exist.
func (f *Supervisor) confirmDead(m *member) {
	f.mu.Lock()
	if f.disarmed || !m.live {
		f.mu.Unlock()
		return
	}
	m.live = false
	m.suspected = false
	f.epoch++
	f.confirmedDead++
	f.updateQuorumLocked()
	// The repair plan: every device the dead shard held, re-replicated
	// from a surviving copy to the device's current rendezvous owners.
	// A cut shard's ds is the in-memory ghost of its dataset — readable
	// even though the "hardware" is gone — but repair deliberately sources
	// the bytes from a *surviving* holder: the merged view of the
	// remaining members, exactly what a real operator would have.
	type job struct {
		dev  string
		data []byte
	}
	var plan []job
	for _, dev := range m.ds.Devices() {
		for _, peer := range f.liveLocked() {
			if data, ok := peer.ds.Get(dev); ok {
				plan = append(plan, job{dev: dev, data: data})
				break
			}
		}
	}
	targets := f.availableTargetsLocked(nil)
	want := f.replicateR
	if want > len(targets) {
		want = len(targets)
	}
	f.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	for _, j := range plan {
		f.replicate(j.dev, collect.HandoffLog, j.data, targets, want, handoffAttempts)
		f.mu.Lock()
		f.repairs++
		f.mu.Unlock()
	}
}

// updateQuorumLocked tracks below-quorum transitions: fewer available
// (live, uncut, unsuspected) shards than W means every write would be
// refused; entering that state opens one degraded window.
func (f *Supervisor) updateQuorumLocked() {
	if !f.quorumOn() {
		return
	}
	below := f.availableLocked() < f.writeW
	if below && !f.belowQuorum {
		f.degradedWins++
	}
	f.belowQuorum = below
}

// gate is the router's pre-forward check (routerHooks.gate): a write verb
// arriving while the fleet is below quorum is refused with a retryable
// ERR before any shard commits anything — an honest "try again" instead
// of a durability promise W shards cannot back. Reads and bookkeeping
// verbs pass: they promise nothing new.
//
// Before refusing, the gate re-probes the suspected shards once: suspicion
// raised during a restart window otherwise only clears on the next beat
// round, and a fleet that is healthy again should not keep refusing writes
// while it waits for its own heartbeat to notice.
func (f *Supervisor) gate(verb string) error {
	if verb != "UPLOAD" && verb != "CHUNK" {
		return nil
	}
	f.mu.Lock()
	if !f.belowQuorum {
		f.mu.Unlock()
		return nil
	}
	var recheck []*member
	for _, m := range f.liveLocked() {
		if m.suspected {
			recheck = append(recheck, m)
		}
	}
	f.mu.Unlock()
	for _, m := range recheck {
		f.noteProbe(m, f.probe(m))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.belowQuorum {
		return nil
	}
	f.degradedReqs++
	return fmt.Errorf("quorum unavailable: fewer than %d shards reachable (retryable)", f.writeW)
}

// blockedAddr is the router's partition check (routerHooks.blocked).
func (f *Supervisor) blockedAddr(addr string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.memberByAddrLocked(addr)
	return m != nil && m.partitioned
}
