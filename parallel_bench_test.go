package symfail

// BenchmarkFleetScaling is the perf-regression harness for sharded fleet
// execution: it sweeps fleet size × worker count, reports simulated
// phone-hours per wall-clock second for every cell, and writes the whole
// grid (with per-fleet-size speedups vs the serial run) to
// BENCH_parallel.json so future PRs have a perf trajectory to compare
// against. Run it alone for stable numbers:
//
//	go test -bench BenchmarkFleetScaling -benchtime 1x .
//
// The observation window shrinks as the fleet grows so every cell does
// comparable total work; phone-hours/sec is the scale-free metric.
// Speedup is wall-clock-bound by the host: on a single-core machine every
// worker count measures ≈ 1.0×, which is itself the determinism story —
// the sharded path costs nothing when there is nothing to win.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"symfail/internal/phone"
)

// scalingCell is one measured (phones, workers) point of the grid.
type scalingCell struct {
	Phones           int     `json:"phones"`
	Workers          int     `json:"workers"`
	Months           float64 `json:"months"`
	PhoneHours       float64 `json:"phoneHours"`
	WallSeconds      float64 `json:"wallSeconds"`
	PhoneHoursPerSec float64 `json:"phoneHoursPerSec"`
	// Speedup is PhoneHoursPerSec over the workers=1 cell of the same
	// fleet size (1.0 for the serial cell itself).
	Speedup float64 `json:"speedup"`
}

type scalingReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	GoVersion  string        `json:"goVersion"`
	Cells      []scalingCell `json:"cells"`
}

// scalingWorkerCounts returns the worker sweep: serial, 4 (the ISSUE's
// reference point), and the host's full width when that differs.
func scalingWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

func BenchmarkFleetScaling(b *testing.B) {
	grid := []struct {
		phones   int
		duration time.Duration
	}{
		{25, 2 * phone.StudyMonth},
		{100, phone.StudyMonth},
		{1000, phone.StudyMonth / 4},
	}
	report := scalingReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, g := range grid {
		serialRate := 0.0
		for _, workers := range scalingWorkerCounts() {
			name := fmt.Sprintf("phones=%d/workers=%d", g.phones, workers)
			var cell scalingCell
			b.Run(name, func(b *testing.B) {
				var hours float64
				for i := 0; i < b.N; i++ {
					fs, err := RunFieldStudy(FieldStudyConfig{
						Seed:       2007,
						Phones:     g.phones,
						Workers:    workers,
						Duration:   g.duration,
						JoinWindow: g.duration / 4,
					})
					if err != nil {
						b.Fatal(err)
					}
					hours += fs.Fleet.ObservedHours()
				}
				wall := b.Elapsed().Seconds()
				cell = scalingCell{
					Phones:      g.phones,
					Workers:     workers,
					Months:      float64(g.duration) / float64(phone.StudyMonth),
					PhoneHours:  hours,
					WallSeconds: wall,
				}
				if wall > 0 {
					cell.PhoneHoursPerSec = hours / wall
				}
				b.ReportMetric(cell.PhoneHoursPerSec, "phone-hours/s")
			})
			if cell.Phones == 0 {
				continue // sub-bench filtered out by -bench
			}
			if workers == 1 {
				serialRate = cell.PhoneHoursPerSec
			}
			if serialRate > 0 {
				cell.Speedup = cell.PhoneHoursPerSec / serialRate
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	if len(report.Cells) == 0 {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("scaling grid written to BENCH_parallel.json (%d cells)", len(report.Cells))
}
