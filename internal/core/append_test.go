package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"symfail/internal/sim"
)

// marshalRecordStdlib is the reference encoding the flattened encoder must
// reproduce byte for byte.
func marshalRecordStdlib(t testing.TB, r Record) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return data
}

func TestAppendRecordMatchesStdlib(t *testing.T) {
	cases := map[string]Record{
		"minimal": {Kind: KindBoot, Time: 0},
		"boot-full": {
			Kind: KindBoot, Time: 123456789, Boot: 7, OSVersion: "7.0s",
			PrevBeat: BeatAlive, PrevTime: 99, OffSeconds: 42.5,
			Detected: DetectedFreeze, LogSalvaged: 3, LogLost: 1,
		},
		"panic": {
			Kind: KindPanic, Time: 1, Category: "KERN-EXEC", PType: 3,
			Apps: []string{"phone", "camera"}, Activity: "voice-call",
		},
		"negative-time":    {Kind: KindBoot, Time: -5, Boot: -2, PType: -7},
		"empty-apps-slice": {Kind: KindPanic, Time: 1, Apps: []string{}},
		"one-empty-app":    {Kind: KindPanic, Time: 1, Apps: []string{""}},
		"escaping": {
			Kind: `we"ird\kind`, Time: 2, OSVersion: "a<b>&c",
			Activity: "tab\there\nnewline\rret\x00nul\x1fctl\bbsp\ffeed",
		},
		"unicode": {
			Kind: "héllo", Time: 3, Activity: "line\u2028sep\u2029para",
			OSVersion: "snow\u00e9\u4e16\u754c",
		},
		"invalid-utf8":  {Kind: string([]byte{'a', 0xff, 'b'}), Time: 4, Activity: string([]byte{0xc3, 0x28})},
		"float-frac":    {Kind: KindBoot, Time: 5, OffSeconds: 0.30000000000000004},
		"float-tiny":    {Kind: KindBoot, Time: 6, OffSeconds: 1e-9},
		"float-huge":    {Kind: KindBoot, Time: 7, OffSeconds: 3.5e21},
		"float-edge-lo": {Kind: KindBoot, Time: 8, OffSeconds: 1e-6},
		"float-edge-hi": {Kind: KindBoot, Time: 9, OffSeconds: 1e21},
		"float-neg":     {Kind: KindBoot, Time: 10, OffSeconds: -123.456},
		"neg-zero-off":  {Kind: KindBoot, Time: 11, OffSeconds: math.Copysign(0, -1)},
	}
	for name, rec := range cases {
		rec := rec
		t.Run(name, func(t *testing.T) {
			want := marshalRecordStdlib(t, rec)
			got := AppendRecord(nil, rec)
			if !bytes.Equal(got, want) {
				t.Errorf("AppendRecord mismatch:\n got %s\nwant %s", got, want)
			}
			if line := AppendRecordLine(nil, rec); !bytes.Equal(line, append(want, '\n')) {
				t.Errorf("AppendRecordLine mismatch: %q", line)
			}
			// Appending into a dirty prefix must not disturb the bytes.
			prefix := []byte("prefix!")
			if got := AppendRecord(prefix, rec); !bytes.Equal(got, append([]byte("prefix!"), want...)) {
				t.Errorf("AppendRecord with prefix mismatch: %s", got)
			}
		})
	}
}

func TestAppendBeatMatchesStdlib(t *testing.T) {
	for _, b := range []Beat{
		{Kind: BeatAlive, Time: 0},
		{Kind: BeatReboot, Time: 1234567890123},
		{Kind: "<odd&kind>", Time: -1},
		{Kind: "", Time: 42}, // no omitempty on Beat: kind stays
	} {
		want, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if got := AppendBeat(nil, b); !bytes.Equal(got, want) {
			t.Errorf("AppendBeat(%+v):\n got %s\nwant %s", b, got, want)
		}
	}
}

func TestAppendFrameMatchesEncodeFrame(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		[]byte(`{"kind":"boot","time":1}`),
		bytes.Repeat([]byte{0xab}, 4096),
	}
	for _, p := range payloads {
		want := EncodeFrame(p)
		got := AppendFrame(nil, p)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendFrame(%d bytes):\n got %q\nwant %q", len(p), got, want)
		}
		// Round-trip through the decoder.
		payload, size, ok := decodeFrame(got)
		if !ok || size != len(got) || !bytes.Equal(payload, p) {
			t.Errorf("decodeFrame round-trip failed for %d-byte payload", len(p))
		}
	}
}

// randomRecord draws a record whose fields cover the full encoding surface,
// including hostile strings and extreme floats (but finite: json.Marshal
// rejects NaN/Inf and the flattened encoder panics on them by contract).
func randomRecord(r *sim.Rand) Record {
	str := func() string {
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			// Bias into the troublesome ranges: controls, HTML chars,
			// high bytes (often invalid UTF-8 when split).
			switch r.Intn(4) {
			case 0:
				b[i] = byte(r.Intn(0x20))
			case 1:
				b[i] = "\"\\<>&/'"[r.Intn(7)]
			case 2:
				b[i] = byte(0x80 + r.Intn(0x80))
			default:
				b[i] = byte(0x20 + r.Intn(0x5f))
			}
		}
		return string(b)
	}
	rec := Record{Kind: str(), Time: int64(r.Uint64())}
	if r.Bool(0.5) {
		rec.Boot = r.Intn(1000) - 500
	}
	if r.Bool(0.5) {
		rec.OSVersion = str()
	}
	if r.Bool(0.3) {
		rec.PrevBeat = BeatKind(str())
	}
	if r.Bool(0.3) {
		rec.PrevTime = int64(r.Uint64())
	}
	if r.Bool(0.5) {
		f := math.Float64frombits(r.Uint64())
		if math.IsInf(f, 0) || math.IsNaN(f) {
			f = r.Float64() * 1e24
		}
		rec.OffSeconds = f
	}
	if r.Bool(0.3) {
		rec.Detected = Detection(str())
	}
	if r.Bool(0.5) {
		rec.Category = str()
	}
	if r.Bool(0.5) {
		rec.PType = r.Intn(100) - 50
	}
	if r.Bool(0.4) {
		apps := make([]string, r.Intn(4))
		for i := range apps {
			apps[i] = str()
		}
		rec.Apps = apps
	}
	if r.Bool(0.3) {
		rec.Activity = str()
	}
	if r.Bool(0.2) {
		rec.LogSalvaged = r.Intn(10)
		rec.LogLost = r.Intn(10)
	}
	return rec
}

func TestAppendRecordQuickCheck(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed)
		for i := 0; i < 20; i++ {
			rec := randomRecord(r)
			want, err := json.Marshal(rec)
			if err != nil {
				return false
			}
			if !bytes.Equal(AppendRecord(nil, rec), want) {
				t.Logf("mismatch for %+v:\n got %s\nwant %s", rec, AppendRecord(nil, rec), want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func FuzzAppendRecordVsStdlib(f *testing.F) {
	f.Add("boot", "7.0s", "KERN-EXEC", "voice", int64(12345), 42.5)
	f.Add(`we"ird`, "a<b>&c", "\u2028\u2029", string([]byte{0xff, 0xfe}), int64(-1), 1e-9)
	f.Add("", "", "", "", int64(0), 0.0)
	f.Fuzz(func(t *testing.T, kind, osv, cat, act string, tm int64, off float64) {
		if math.IsInf(off, 0) || math.IsNaN(off) {
			t.Skip()
		}
		rec := Record{
			Kind: kind, Time: tm, OSVersion: osv, OffSeconds: off,
			Category: cat, Activity: act, Apps: []string{kind, act},
		}
		want, err := json.Marshal(rec)
		if err != nil {
			t.Skip()
		}
		if got := AppendRecord(nil, rec); !bytes.Equal(got, want) {
			t.Errorf("AppendRecord mismatch:\n got %s\nwant %s", got, want)
		}
	})
}

func TestAppendRecordAllocs(t *testing.T) {
	rec := Record{
		Kind: KindPanic, Time: 1234567890, Category: "KERN-EXEC", PType: 3,
		Apps: []string{"phone", "camera"}, Activity: "voice-call",
	}
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(1000, func() {
		buf = AppendRecord(buf[:0], rec)
	})
	if avg != 0 {
		t.Errorf("AppendRecord into warm scratch = %v allocs, want 0", avg)
	}
	frame := make([]byte, 0, 512)
	avg = testing.AllocsPerRun(1000, func() {
		frame = AppendFrame(frame[:0], buf)
	})
	if avg != 0 {
		t.Errorf("AppendFrame into warm scratch = %v allocs, want 0", avg)
	}
}
