package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"symfail"
	"symfail/internal/collect"
	"symfail/internal/phone"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

// exportSmallStudy simulates a small study and exports its dataset.
func exportSmallStudy(t *testing.T) string {
	t.Helper()
	fs, err := symfail.RunFieldStudy(symfail.FieldStudyConfig{
		Seed:       3,
		Phones:     4,
		Duration:   2 * phone.StudyMonth,
		JoinWindow: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "data")
	if err := collect.ExportDir(fs.Dataset, dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestAnalyzeTables(t *testing.T) {
	dir := exportSmallStudy(t)
	out, err := capture(t, func() error { return run([]string{"-data", dir}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dataset: 4 devices", "Figure 2", "Table 2", "MTBFr", "Extras"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAnalyzeJSON(t *testing.T) {
	dir := exportSmallStudy(t)
	out, err := capture(t, func() error { return run([]string{"-data", dir, "-json"}) })
	if err != nil {
		t.Fatal(err)
	}
	var sum summary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if sum.Devices != 4 || sum.ObservedHours <= 0 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.Panics > 0 && len(sum.PanicShares) == 0 {
		t.Error("panic shares missing")
	}
}

func TestAnalyzeThresholdChangesClassification(t *testing.T) {
	dir := exportSmallStudy(t)
	get := func(thr string) summary {
		out, err := capture(t, func() error {
			return run([]string{"-data", dir, "-json", "-threshold", thr})
		})
		if err != nil {
			t.Fatal(err)
		}
		var sum summary
		if err := json.Unmarshal([]byte(out), &sum); err != nil {
			t.Fatal(err)
		}
		return sum
	}
	small := get("1s")
	paper := get("360s")
	huge := get((24 * time.Hour).String())
	if !(small.SelfShutdowns <= paper.SelfShutdowns && paper.SelfShutdowns <= huge.SelfShutdowns) {
		t.Errorf("threshold monotonicity broken: %d / %d / %d",
			small.SelfShutdowns, paper.SelfShutdowns, huge.SelfShutdowns)
	}
}

func TestAnalyzeRequiresData(t *testing.T) {
	if _, err := capture(t, func() error { return run(nil) }); err == nil {
		t.Error("missing -data accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-data", "/nonexistent-dir"}) }); err == nil {
		t.Error("bad -data accepted")
	}
}
