// Continuous study runs: the checkpoint/resume layer of DESIGN.md §16.
//
// A Continuous feeds a dataset through the full continuous-operation
// accumulator set — the composite Tables plus the windowed and decaying
// views — and periodically serializes the complete study state (accumulator
// internals, feeder cursor, RNG position) through a collect.CrashStore using
// the same staged-write / sync / atomic-rename protocol the collection
// server uses for its snapshots. A killed run resumed from the store re-feeds
// only the records after the last durable checkpoint, and because the
// checkpoint codec is exact (stream/checkpoint.go), the eventual tables are
// byte-identical to an uninterrupted run.
package analysis

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// Checkpoint file names on the CrashStore. The tmp file is staged and
// synced first; Rename is the atomic commit point, so a crash anywhere
// leaves either the old or the new checkpoint installed, never a torn one.
const (
	CheckpointFile    = "study.ckpt"
	checkpointStaging = "study.ckpt.tmp"
)

// ErrKilled reports that the configured Crashpoint hook fired: the run
// stopped as if the process died there. Resume with a fresh NewContinuous
// over the same store (after CrashStore.Crash, in tests).
var ErrKilled = errors.New("analysis: continuous run killed at crashpoint")

// ContinuousConfig configures a checkpointed continuous study run.
type ContinuousConfig struct {
	// Options are the analysis thresholds (zero fields take the paper's
	// defaults, like everywhere else).
	Options Options
	// Store is the durable medium for checkpoints. Required.
	Store *collect.CrashStore
	// CheckpointEvery is the rough number of records between checkpoints;
	// the exact gap is drawn from the run's RNG in [every/2, every*3/2) so
	// checkpoint timing exercises the RNG save/restore path. Default 256.
	CheckpointEvery int
	// Seed seeds the checkpoint-schedule RNG of a fresh run; a resumed run
	// restores the RNG position from the checkpoint instead.
	Seed uint64
	// Crashpoint, when non-nil, is consulted at named fault points
	// ("observe" before each record; "ckpt-staged", "ckpt-synced",
	// "ckpt-installed" inside the checkpoint protocol). Returning true
	// kills the run there: Feed returns ErrKilled immediately.
	Crashpoint func(point string) bool
}

// Continuous is a resumable study run. Zero value is not useful; build with
// NewContinuous, which resumes from the store's checkpoint when one exists.
type Continuous struct {
	cfg    ContinuousConfig
	rng    *sim.Rand
	tables *stream.Tables
	window *stream.WindowAcc
	decay  *stream.DecayAcc

	// Feeder cursor: devIdx indexes the sorted device list, recIdx the
	// current device's time-ordered records.
	devIdx, recIdx int
	fed            int
	untilNext      int
	resumed        bool
}

// continuousState is the on-store checkpoint image.
type continuousState struct {
	DevIdx int             `json:"devIdx"`
	RecIdx int             `json:"recIdx"`
	Fed    int             `json:"fed"`
	Rng    [4]uint64       `json:"rng"`
	Tables json.RawMessage `json:"tables"`
	Window json.RawMessage `json:"window"`
	Decay  json.RawMessage `json:"decay"`
}

// NewContinuous starts (or resumes) a continuous run. When the store holds
// a checkpoint, the accumulators, feeder cursor and RNG position are
// restored from it and Resumed reports true.
func NewContinuous(cfg ContinuousConfig) (*Continuous, error) {
	if cfg.Store == nil {
		return nil, errors.New("analysis: ContinuousConfig.Store is required")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 256
	}
	c := &Continuous{cfg: cfg}
	if blob := cfg.Store.Read(CheckpointFile); len(blob) > 0 {
		var st continuousState
		if err := json.Unmarshal(blob, &st); err != nil {
			return nil, fmt.Errorf("analysis: corrupt checkpoint: %w", err)
		}
		tables, err := stream.NewTablesFromState(st.Tables)
		if err != nil {
			return nil, err
		}
		window, err := stream.NewWindowAccFromState(st.Window)
		if err != nil {
			return nil, err
		}
		decay, err := stream.NewDecayAccFromState(st.Decay)
		if err != nil {
			return nil, err
		}
		c.tables, c.window, c.decay = tables, window, decay
		c.rng = sim.NewRandFromState(st.Rng)
		c.devIdx, c.recIdx, c.fed = st.DevIdx, st.RecIdx, st.Fed
		c.resumed = true
	} else {
		c.tables = stream.NewTables(cfg.Options)
		c.window = stream.NewWindowAcc(cfg.Options)
		c.decay = stream.NewDecayAcc(cfg.Options)
		c.rng = sim.NewRand(cfg.Seed)
	}
	// Both paths draw the next checkpoint gap here: an uninterrupted run
	// draws from the state it just serialized, a resumed run from the
	// restored copy of that same state — identical draws either way.
	c.untilNext = c.drawGap()
	return c, nil
}

func (c *Continuous) drawGap() int {
	half := c.cfg.CheckpointEvery / 2
	if half < 1 {
		half = 1
	}
	return half + c.rng.Intn(c.cfg.CheckpointEvery)
}

func (c *Continuous) killed(point string) bool {
	return c.cfg.Crashpoint != nil && c.cfg.Crashpoint(point)
}

// Feed runs the study over the dataset from the current cursor position,
// checkpointing on schedule and once more after the last record. The
// dataset must be the same one across resumes (per-device records are
// stable-sorted by time, exactly like New, so the cursor indexes are
// reproducible). Returns ErrKilled when the Crashpoint hook fires; feeding
// the records since the last checkpoint again after resume is safe because
// the restored accumulators have not seen them.
func (c *Continuous) Feed(dataset map[string][]core.Record) error {
	ids := make([]string, 0, len(dataset))
	for id := range dataset {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for ; c.devIdx < len(ids); c.devIdx, c.recIdx = c.devIdx+1, 0 {
		id := ids[c.devIdx]
		c.tables.AddDevice(id)
		ordered := append([]core.Record(nil), dataset[id]...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })
		for ; c.recIdx < len(ordered); c.recIdx++ {
			if c.killed("observe") {
				return ErrKilled
			}
			r := ordered[c.recIdx]
			c.tables.Observe(id, r)
			c.window.Observe(id, r)
			c.decay.Observe(id, r)
			c.fed++
			if c.untilNext--; c.untilNext <= 0 {
				// Serialize with the cursor past this record, then draw the
				// next gap from the post-checkpoint RNG state.
				c.recIdx++
				err := c.Checkpoint()
				c.recIdx--
				if err != nil {
					return err
				}
				c.untilNext = c.drawGap()
			}
		}
	}
	return c.Checkpoint()
}

// Checkpoint serializes the full study state through the staged-write /
// sync / atomic-rename protocol. Safe to call between Feeds; returns
// ErrKilled when the Crashpoint hook fires mid-protocol (the store then
// holds the old checkpoint, or the new one if the rename landed).
func (c *Continuous) Checkpoint() error {
	tbl, err := c.tables.MarshalState()
	if err != nil {
		return err
	}
	win, err := c.window.MarshalState()
	if err != nil {
		return err
	}
	dec, err := c.decay.MarshalState()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(continuousState{
		DevIdx: c.devIdx, RecIdx: c.recIdx, Fed: c.fed,
		Rng: c.rng.State(), Tables: tbl, Window: win, Decay: dec,
	})
	if err != nil {
		return err
	}
	st := c.cfg.Store
	st.WriteFile(checkpointStaging, blob)
	if c.killed("ckpt-staged") {
		return ErrKilled
	}
	st.Sync(checkpointStaging)
	if c.killed("ckpt-synced") {
		return ErrKilled
	}
	st.Rename(checkpointStaging, CheckpointFile)
	if c.killed("ckpt-installed") {
		return ErrKilled
	}
	return nil
}

// Resumed reports whether this run was restored from a checkpoint.
func (c *Continuous) Resumed() bool { return c.resumed }

// Fed returns the total number of records observed so far (across resumes).
func (c *Continuous) Fed() int { return c.fed }

// Tables returns the current epoch's full table set. Non-destructive: the
// run stays live.
func (c *Continuous) Tables() *stream.TablesSnapshot {
	return c.tables.Snapshot().(*stream.TablesSnapshot)
}

// Window returns the current epoch's windowed view.
func (c *Continuous) Window() *stream.WindowSnapshot {
	return c.window.Snapshot().(*stream.WindowSnapshot)
}

// WindowStats renders the windowed view over the last `days` simulated days.
func (c *Continuous) WindowStats(days int) *stream.WindowSnapshot { return c.window.Stats(days) }

// Decay returns the current epoch's exponentially-decaying view.
func (c *Continuous) Decay() *stream.DecaySnapshot {
	return c.decay.Snapshot().(*stream.DecaySnapshot)
}
