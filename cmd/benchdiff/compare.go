package main

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// report is the shared shape of every BENCH_*.json file: a header plus a
// list of cells with arbitrary fields. Cells are decoded generically so one
// tool gates both the fleet-scaling and the analysis benchmarks, and new
// metrics gate automatically by naming convention.
type report struct {
	Cells []map[string]any `json:"cells"`
}

// identityFields name a cell within its grid; everything numeric outside
// this set is a measurement.
var identityFields = map[string]bool{
	"phones":  true,
	"workers": true,
	"months":  true,
	"mode":    true,
	"records": true,
}

// higherIsBetter reports whether a metric regresses by going down
// (throughput) rather than up (cost).
func higherIsBetter(metric string) bool {
	return strings.HasSuffix(metric, "PerSec")
}

// allocSlack is the relative allowance on allocation counts. Allocs/op
// are near-deterministic but not exact: a one-time lazy init or pool
// refill averaged over a few bench iterations moves the count by ±1 in
// ~70k (≈0.002%). A real leak on a per-record hot path moves it by at
// least one alloc *per record* — several percent — so 0.5% separates
// jitter from leaks with two orders of magnitude to spare.
const allocSlack = 0.005

// gated reports whether a metric participates in the gate at all, and with
// what allowance: throughput metrics tolerate `threshold`, allocation
// counts tolerate only allocSlack (anything beyond it is a leak in a
// pooled hot path), everything else (wall seconds, RSS, raw totals) is
// informational — those follow from the gated metrics and
// double-reporting them only adds noise.
func gated(metric string, threshold float64) (allowance float64, ok bool) {
	switch {
	case higherIsBetter(metric):
		return threshold, true
	case strings.HasPrefix(metric, "allocs"):
		return allocSlack, true
	default:
		return 0, false
	}
}

// cellKey renders a cell's identity fields into a stable match key.
func cellKey(cell map[string]any) string {
	parts := make([]string, 0, len(identityFields))
	for f := range identityFields {
		if v, present := cell[f]; present {
			parts = append(parts, fmt.Sprintf("%s=%v", f, v))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}

// Result is the outcome of one baseline/new comparison.
type Result struct {
	// Regressions are gate failures; non-empty means exit 1.
	Regressions []string
	// OK lists every gated metric that passed, with its delta.
	OK []string
	// Notes report cells that exist on only one side.
	Notes []string
}

// Compare diffs two benchmark reports. A throughput metric may drop by at
// most threshold (fractional); an allocation metric may not rise at all.
func Compare(baseline, fresh []byte, threshold float64) (Result, error) {
	var baseRep, newRep report
	if err := json.Unmarshal(baseline, &baseRep); err != nil {
		return Result{}, fmt.Errorf("baseline: %w", err)
	}
	if err := json.Unmarshal(fresh, &newRep); err != nil {
		return Result{}, fmt.Errorf("new: %w", err)
	}
	newCells := make(map[string]map[string]any, len(newRep.Cells))
	for _, c := range newRep.Cells {
		newCells[cellKey(c)] = c
	}
	var res Result
	seen := make(map[string]bool)
	for _, baseCell := range baseRep.Cells {
		key := cellKey(baseCell)
		seen[key] = true
		newCell, present := newCells[key]
		if !present {
			res.Notes = append(res.Notes, fmt.Sprintf("cell [%s] missing from new run", key))
			continue
		}
		metrics := make([]string, 0, len(baseCell))
		for m := range baseCell {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			allowance, isGated := gated(m, threshold)
			if identityFields[m] || !isGated {
				continue
			}
			baseVal, bOK := asFloat(baseCell[m])
			newVal, nOK := asFloat(newCell[m])
			if !bOK || !nOK {
				continue
			}
			delta := relativeDelta(baseVal, newVal, higherIsBetter(m))
			line := fmt.Sprintf("[%s] %s: %.4g -> %.4g (%+.1f%%)", key, m, baseVal, newVal, 100*change(baseVal, newVal))
			if delta > allowance {
				res.Regressions = append(res.Regressions, line)
			} else {
				res.OK = append(res.OK, line)
			}
		}
	}
	newKeys := make([]string, 0, len(newCells))
	for key := range newCells {
		if !seen[key] {
			newKeys = append(newKeys, key)
		}
	}
	sort.Strings(newKeys)
	for _, key := range newKeys {
		res.Notes = append(res.Notes, fmt.Sprintf("cell [%s] new in this run (no baseline)", key))
	}
	return res, nil
}

// relativeDelta is how far newVal regressed from baseVal, as a fraction of
// baseVal; improvement and no-change yield 0.
func relativeDelta(baseVal, newVal float64, higherBetter bool) float64 {
	if baseVal == 0 {
		if newVal == 0 || higherBetter {
			return 0 // can't regress throughput below a zero baseline
		}
		return math.Inf(1) // cost appeared where the baseline had none
	}
	regress := (baseVal - newVal) / baseVal
	if !higherBetter {
		regress = -regress
	}
	if regress < 0 {
		return 0
	}
	return regress
}

// change is the signed fractional movement for display.
func change(baseVal, newVal float64) float64 {
	if baseVal == 0 {
		return 0
	}
	return (newVal - baseVal) / baseVal
}

func asFloat(v any) (float64, bool) {
	f, ok := v.(float64)
	return f, ok
}
