package phone

import (
	"fmt"
	"time"

	"symfail/internal/sim"
)

// FleetConfig shapes a deployment of instrumented phones — the paper's
// study ran 25 phones for 14 months, with phones joining progressively
// from September 2005.
type FleetConfig struct {
	// Seed drives enrolment staggering and derives per-device seeds.
	Seed uint64
	// Phones is the number of devices (25 in the paper).
	Phones int
	// Duration is the observation window (14 months in the paper).
	Duration time.Duration
	// JoinWindow is the span over which phones join the study; a phone
	// joining late is observed for less time, like the paper's
	// progressively-deployed loggers.
	JoinWindow time.Duration
	// Device optionally customises the per-device calibration; when nil,
	// DefaultConfig is used with a derived seed and a persona drawn from
	// the default mix (set UniformPersonas to suppress the draw).
	Device func(seed uint64) Config
	// UniformPersonas keeps every default-config device on the balanced
	// persona (used by tests that pin rates).
	UniformPersonas bool
	// Flash arms the flash fault model on every device. Applied after the
	// persona/OS draws so enabling adversity does not change which persona
	// or OS version a device gets.
	Flash FlashFaults
	// Workers bounds how many device shards Run simulates concurrently:
	// 0 means GOMAXPROCS, 1 reproduces the fully serial run. The worker
	// count may only change wall-clock time — every count produces
	// byte-identical devices, logs and datasets, because each device owns
	// a private engine and RNG and devices never interact.
	Workers int
}

// DefaultFleetConfig mirrors the paper's deployment.
func DefaultFleetConfig(seed uint64) FleetConfig {
	return FleetConfig{
		Seed:       seed,
		Phones:     25,
		Duration:   StudyDuration,
		JoinWindow: 9 * StudyMonth,
	}
}

// Fleet is a set of enrolled devices. Each device is one shard of the
// study: it owns a private discrete-event engine (Engines[i] drives
// Devices[i] and nothing else), which is what lets Run simulate shards on
// concurrent workers without perturbing a single event — the paper's 25
// phones never interact except through the collection server, and neither
// do ours.
type Fleet struct {
	Engines []*sim.Engine
	Devices []*Device
	cfg     FleetConfig
}

// osVersionMix reflects the study deployment: Symbian 6.1 to 8.0 or 9.0,
// with the majority on 8.0.
var osVersionMix = []struct {
	version string
	weight  float64
}{
	{"6.1", 12},
	{"7.0", 16},
	{"8.0", 56},
	{"9.0", 16},
}

// NewFleet builds and enrols the devices (phones join at deterministic,
// seed-derived offsets inside the join window). Call Run to simulate.
//
// Construction is always serial, whatever cfg.Workers says: per-device
// seeds, personas, OS versions and join offsets are all drawn from one
// fleet RNG in device order, so the draw sequence — and therefore every
// device's identity — is independent of how the run is later scheduled.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Phones <= 0 {
		panic("phone: fleet needs at least one phone")
	}
	r := sim.NewRand(cfg.Seed)
	fl := &Fleet{cfg: cfg}
	for i := 0; i < cfg.Phones; i++ {
		devSeed := r.Uint64()
		devCfg := DefaultConfig(devSeed)
		if cfg.Device != nil {
			devCfg = cfg.Device(devSeed)
		} else if !cfg.UniformPersonas {
			weights := make([]float64, len(personaMix))
			for j, pm := range personaMix {
				weights[j] = pm.w
			}
			ApplyPersona(&devCfg, personaMix[r.WeightedIndex(weights)].p)
		}
		if devCfg.OSVersion == "" || devCfg.OSVersion == "8.0" {
			weights := make([]float64, len(osVersionMix))
			for j, v := range osVersionMix {
				weights[j] = v.weight
			}
			devCfg.OSVersion = osVersionMix[r.WeightedIndex(weights)].version
		}
		if cfg.Flash.Enabled() {
			devCfg.Flash = cfg.Flash
		}
		eng := sim.NewEngine()
		d := NewDevice(fmt.Sprintf("phone-%02d", i+1), eng, devCfg)
		var join time.Duration
		if cfg.JoinWindow > 0 {
			join = time.Duration(r.Float64() * float64(cfg.JoinWindow))
		}
		d.Enroll(sim.Epoch.Add(join))
		fl.Engines = append(fl.Engines, eng)
		fl.Devices = append(fl.Devices, d)
	}
	return fl
}

// Run simulates the whole observation window and finalises every device.
// Shards (one device, its engine and its RNG streams each) run on up to
// cfg.Workers concurrent workers; each worker owns its shard outright for
// the duration, per the sim.Engine ownership contract, so any worker count
// yields byte-identical results.
func (f *Fleet) Run() error {
	until := sim.Epoch.Add(f.cfg.Duration)
	return sim.RunShards(len(f.Devices), f.cfg.Workers, func(i int) error {
		if err := f.Engines[i].Run(until); err != nil {
			return err
		}
		f.Devices[i].Finalize()
		return nil
	})
}

// ObservedHours sums powered-on hours across the fleet.
func (f *Fleet) ObservedHours() float64 {
	var total float64
	for _, d := range f.Devices {
		total += d.Oracle().ObservedHours
	}
	return total
}

// TruthFailures sums ground-truth freezes and self-shutdowns.
func (f *Fleet) TruthFailures() int {
	n := 0
	for _, d := range f.Devices {
		n += d.Oracle().Failures()
	}
	return n
}
