package symbos

import (
	"testing"

	"symfail/internal/sim"
)

// mapStore is a minimal Store for tests.
type mapStore map[string][]byte

func (m mapStore) Write(path string, data []byte) bool {
	m[path] = append([]byte(nil), data...)
	return true
}
func (m mapStore) Append(path string, data []byte) bool {
	m[path] = append(m[path], data...)
	return true
}
func (m mapStore) Read(path string) ([]byte, bool) {
	d, ok := m[path]
	return d, ok
}
func (m mapStore) Delete(path string)      { delete(m, path) }
func (m mapStore) Exists(path string) bool { _, ok := m[path]; return ok }

func newFileServerFixture(t *testing.T) (*Kernel, *FileServer, *FileSession, mapStore) {
	t.Helper()
	eng := sim.NewEngine()
	k := NewKernel(eng)
	k.SetPanicHandler(func(*Panic, *Process) {})
	store := make(mapStore)
	fsrv := NewFileServer(k, store)
	client := k.StartProcess("Client", false)
	return k, fsrv, fsrv.Connect(client.Main()), store
}

func TestFileServerWriteReadRoundTrip(t *testing.T) {
	k, _, sess, store := newFileServerFixture(t)
	client := k.Process("Client")
	k.Exec(client.Main(), "io", func() {
		if code := sess.WriteFile("logs/beats", []byte("alive")); code != KErrNone {
			t.Fatalf("write code = %s", ErrName(code))
		}
		data, code := sess.ReadFile("logs/beats")
		if code != KErrNone || string(data) != "alive" {
			t.Fatalf("read = %q, %s", data, ErrName(code))
		}
		if !sess.FileExists("logs/beats") {
			t.Error("FileExists false")
		}
	})
	if string(store["logs/beats"]) != "alive" {
		t.Errorf("store = %q", store["logs/beats"])
	}
}

func TestFileServerAppend(t *testing.T) {
	k, _, sess, _ := newFileServerFixture(t)
	client := k.Process("Client")
	k.Exec(client.Main(), "io", func() {
		sess.AppendFile("log", []byte("a"))
		sess.AppendFile("log", []byte("b"))
		data, code := sess.ReadFile("log")
		if code != KErrNone || string(data) != "ab" {
			t.Fatalf("read = %q, %s", data, ErrName(code))
		}
	})
}

func TestFileServerBinaryPayload(t *testing.T) {
	k, _, sess, _ := newFileServerFixture(t)
	client := k.Process("Client")
	blob := []byte{0, 1, 2, 255, 0, 42}
	k.Exec(client.Main(), "io", func() {
		// Contents containing NUL bytes must survive: only the FIRST NUL
		// separates path from data.
		if code := sess.WriteFile("bin", blob); code != KErrNone {
			t.Fatalf("write: %s", ErrName(code))
		}
		data, code := sess.ReadFile("bin")
		if code != KErrNone || string(data) != string(blob) {
			t.Fatalf("read = %v, %s", data, ErrName(code))
		}
	})
}

func TestFileServerMissingFile(t *testing.T) {
	k, _, sess, _ := newFileServerFixture(t)
	client := k.Process("Client")
	k.Exec(client.Main(), "io", func() {
		if _, code := sess.ReadFile("nope"); code != KErrNotFound {
			t.Errorf("read missing = %s", ErrName(code))
		}
		if sess.FileExists("nope") {
			t.Error("FileExists true for missing file")
		}
		if code := sess.DeleteFile("nope"); code != KErrNone {
			t.Errorf("delete missing = %s (idempotent delete expected)", ErrName(code))
		}
	})
}

func TestFileServerDelete(t *testing.T) {
	k, _, sess, store := newFileServerFixture(t)
	client := k.Process("Client")
	k.Exec(client.Main(), "io", func() {
		sess.WriteFile("f", []byte("x"))
		sess.DeleteFile("f")
		if sess.FileExists("f") {
			t.Error("file survived delete")
		}
	})
	if len(store) != 0 {
		t.Errorf("store = %v", store)
	}
}

func TestFileServerEmptyPathRejected(t *testing.T) {
	k, _, sess, _ := newFileServerFixture(t)
	client := k.Process("Client")
	k.Exec(client.Main(), "io", func() {
		if code := sess.WriteFile("", []byte("x")); code != KErrArgument {
			t.Errorf("empty path write = %s", ErrName(code))
		}
	})
}

func TestFileServerUnknownOp(t *testing.T) {
	k, fsrv, _, _ := newFileServerFixture(t)
	client := k.Process("Client")
	raw := fsrv.Server().Connect(client.Main())
	k.Exec(client.Main(), "io", func() {
		if code := raw.SendReceive(9999, ""); code != KErrNotSupported {
			t.Errorf("unknown op = %s", ErrName(code))
		}
	})
}

func TestFileServerIsCriticalServer(t *testing.T) {
	_, fsrv, _, _ := newFileServerFixture(t)
	if !fsrv.Server().Process().System() {
		t.Error("file server must be a critical system server")
	}
}

func TestFileServerPanicDisconnectsClients(t *testing.T) {
	k, fsrv, sess, _ := newFileServerFixture(t)
	client := k.Process("Client")
	// Kill the file server the hard way.
	k.TerminateProcess(fsrv.Server().Process())
	k.Exec(client.Main(), "io", func() {
		if code := sess.WriteFile("f", []byte("x")); code != KErrDisconnected {
			t.Errorf("write to dead server = %s", ErrName(code))
		}
		if _, code := sess.ReadFile("f"); code != KErrDisconnected {
			t.Errorf("read from dead server = %s", ErrName(code))
		}
	})
}
