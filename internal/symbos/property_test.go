package symbos

import (
	"testing"

	"symfail/internal/sim"
)

func newPropFixture(t *testing.T) (*Kernel, *PropertyBus, *Process) {
	t.Helper()
	eng := sim.NewEngine()
	k := NewKernel(eng)
	k.SetPanicHandler(func(*Panic, *Process) {})
	bus := NewPropertyBus(k)
	return k, bus, k.StartProcess("PropClient", false)
}

func TestPropertyDefineGetSet(t *testing.T) {
	_, bus, _ := newPropFixture(t)
	bus.Define(PropBatteryLevel, 100)
	if v, code := bus.Get(PropBatteryLevel); code != KErrNone || v != 100 {
		t.Fatalf("Get = %d, %s", v, ErrName(code))
	}
	bus.Set(PropBatteryLevel, 55)
	if v, _ := bus.Get(PropBatteryLevel); v != 55 {
		t.Errorf("after Set = %d", v)
	}
	if _, code := bus.Get("nope"); code != KErrNotFound {
		t.Errorf("undefined Get = %s", ErrName(code))
	}
	if keys := bus.Keys(); len(keys) != 1 || keys[0] != PropBatteryLevel {
		t.Errorf("Keys = %v", keys)
	}
}

func TestPropertySubscriptionFiresOnPublication(t *testing.T) {
	k, bus, proc := newPropFixture(t)
	bus.Define(PropBatteryStatus, 0)
	prop := bus.Attach(PropBatteryStatus)
	if prop.Key() != PropBatteryStatus {
		t.Errorf("Key = %q", prop.Key())
	}
	fires := 0
	var ao *ActiveObject
	ao = proc.Main().NewActiveObject("sub", 1, func(int) {
		fires++
		prop.Subscribe(ao) // re-subscribe, the daemon pattern
	})
	k.Exec(proc.Main(), "arm", func() { prop.Subscribe(ao) })
	bus.Set(PropBatteryStatus, 1)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Fatalf("fires = %d", fires)
	}
	// Second publication fires again (the RunL re-subscribed).
	bus.Set(PropBatteryStatus, 0)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 2 {
		t.Errorf("fires = %d after second publication", fires)
	}
	// Value readable through the handle.
	if v, code := prop.Get(); code != KErrNone || v != 0 {
		t.Errorf("Get = %d, %s", v, ErrName(code))
	}
}

func TestPropertyDoubleSubscribePanics(t *testing.T) {
	k, bus, proc := newPropFixture(t)
	bus.Define(PropCallState, 0)
	prop := bus.Attach(PropCallState)
	ao := proc.Main().NewActiveObject("sub", 1, func(int) {})
	p := k.Exec(proc.Main(), "double", func() {
		prop.Subscribe(ao)
		prop.Subscribe(ao)
	})
	if p == nil || p.Key() != "KERN-EXEC 15" {
		t.Fatalf("panic = %v, want KERN-EXEC 15", p)
	}
}

func TestPropertyCancel(t *testing.T) {
	k, bus, proc := newPropFixture(t)
	bus.Define(PropCallState, 0)
	prop := bus.Attach(PropCallState)
	fires := 0
	ao := proc.Main().NewActiveObject("sub", 1, func(int) { fires++ })
	k.Exec(proc.Main(), "arm", func() { prop.Subscribe(ao) })
	prop.Cancel()
	prop.Cancel() // idempotent
	bus.Set(PropCallState, 1)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 0 {
		t.Errorf("cancelled subscription fired %d times", fires)
	}
	// Re-subscribing after cancel works (no KERN-EXEC 15).
	if p := k.Exec(proc.Main(), "rearm", func() { prop.Subscribe(ao) }); p != nil {
		t.Fatalf("re-subscribe panicked: %v", p)
	}
	bus.Set(PropCallState, 0)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Errorf("fires = %d after re-subscribe", fires)
	}
}

func TestPropertySubscriberListCompacts(t *testing.T) {
	k, bus, proc := newPropFixture(t)
	bus.Define(PropBatteryLevel, 100)
	prop := bus.Attach(PropBatteryLevel)
	ao := proc.Main().NewActiveObject("sub", 1, func(int) {})
	for i := 0; i < 100; i++ {
		k.Exec(proc.Main(), "arm", func() { prop.Subscribe(ao) })
		bus.Set(PropBatteryLevel, i)
		if err := k.Engine().RunAll(); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(bus.subs[PropBatteryLevel]); got > 1 {
		t.Errorf("subscriber list grew to %d (should compact)", got)
	}
}

func TestPropertyMultipleSubscribers(t *testing.T) {
	k, bus, proc := newPropFixture(t)
	bus.Define(PropBatteryStatus, 0)
	a := bus.Attach(PropBatteryStatus)
	b := bus.Attach(PropBatteryStatus)
	var gotA, gotB int
	aoA := proc.Main().NewActiveObject("a", 1, func(int) { gotA++ })
	aoB := proc.Main().NewActiveObject("b", 1, func(int) { gotB++ })
	k.Exec(proc.Main(), "arm", func() {
		a.Subscribe(aoA)
		b.Subscribe(aoB)
	})
	bus.Set(PropBatteryStatus, 1)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if gotA != 1 || gotB != 1 {
		t.Errorf("fires = %d/%d", gotA, gotB)
	}
}
