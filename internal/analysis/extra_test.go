package analysis

import (
	"math"
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

func TestFreezeDowntimes(t *testing.T) {
	s := newSyntheticStudy(t)
	fd := s.FreezeDowntimes()
	if fd.Count != 1 {
		t.Fatalf("count = %d", fd.Count)
	}
	// The synthetic freeze went down at 1h03m and rebooted at 1h30m: 27 min.
	want := 27 * 60.0
	if math.Abs(fd.MedianSeconds-want) > 1 {
		t.Errorf("median = %v, want %v", fd.MedianSeconds, want)
	}
	if fd.MaxSeconds != fd.MedianSeconds || fd.P90Seconds != fd.MedianSeconds {
		t.Errorf("single-sample stats inconsistent: %+v", fd)
	}
	if math.Abs(fd.MeanSeconds-want) > 1 {
		t.Errorf("mean = %v", fd.MeanSeconds)
	}
}

func TestFreezeDowntimesEmpty(t *testing.T) {
	s := New(nil, Options{})
	if fd := s.FreezeDowntimes(); fd.Count != 0 || fd.MedianSeconds != 0 {
		t.Errorf("empty downtimes = %+v", fd)
	}
}

func TestPanicLeadTimes(t *testing.T) {
	s := newSyntheticStudy(t)
	lt := s.PanicLeadTimes()
	// Two related panics: at 1h and 1h02m, freeze at 1h03m → leads 180 s
	// and 60 s.
	if lt.Count != 2 {
		t.Fatalf("count = %d", lt.Count)
	}
	if lt.MedianSeconds != 180 || lt.P90Seconds != 180 {
		t.Errorf("lead times = %+v", lt)
	}
}

func TestPerDeviceMTBFAndDispersion(t *testing.T) {
	ds := syntheticDataset()
	// A second, failure-free device with some uptime.
	ds["p2"] = []core.Record{
		{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot},
		{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(50 * time.Hour)), Boot: 2,
			Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
			PrevTime:   int64(sim.Epoch.Add(40 * time.Hour)),
			OffSeconds: (10 * time.Hour).Seconds()},
	}
	s := New(ds, Options{})
	per := s.PerDeviceMTBF()
	if len(per) != 2 {
		t.Fatalf("devices = %d", len(per))
	}
	byID := map[string]DeviceMTBF{}
	for _, d := range per {
		byID[d.Device] = d
	}
	p1 := byID["p1"]
	if p1.Freezes != 1 || p1.SelfShutdowns != 1 || p1.MTBFHours <= 0 {
		t.Errorf("p1 = %+v", p1)
	}
	p2 := byID["p2"]
	if p2.Freezes != 0 || p2.MTBFHours != 0 || p2.Hours <= 0 {
		t.Errorf("p2 = %+v", p2)
	}
	if cv := s.MTBFDispersion(); cv <= 0 {
		t.Errorf("dispersion = %v, want > 0 for uneven devices", cv)
	}
}

func TestMTBFDispersionDegenerate(t *testing.T) {
	if cv := New(nil, Options{}).MTBFDispersion(); cv != 0 {
		t.Errorf("empty dispersion = %v", cv)
	}
	s := newSyntheticStudy(t) // single device
	if cv := s.MTBFDispersion(); cv != 0 {
		t.Errorf("single-device dispersion = %v", cv)
	}
}

func TestUserReports(t *testing.T) {
	ds := map[string][]core.Record{
		"p1": {
			{Kind: core.KindUserReport, Time: int64(sim.Epoch.Add(2 * time.Hour)),
				PrevTime: int64(sim.Epoch.Add(time.Hour)),
				Detected: "wrong ringtone played", Activity: "idle"},
			{Kind: core.KindUserReport, Time: int64(sim.Epoch.Add(5 * time.Hour)),
				PrevTime: int64(sim.Epoch.Add(4*time.Hour + 30*time.Minute)),
				Detected: "inaccurate charge indicator"},
			{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot},
		},
	}
	st := UserReports(ds)
	if st.Reports != 2 {
		t.Fatalf("reports = %d", st.Reports)
	}
	if st.ByDetail["wrong ringtone played"] != 1 {
		t.Errorf("ByDetail = %v", st.ByDetail)
	}
	if st.ByActivity["idle"] != 1 || st.ByActivity["unspecified"] != 1 {
		t.Errorf("ByActivity = %v", st.ByActivity)
	}
	// Delays: 3600 s and 1800 s -> median element is 3600 s (index 1).
	if st.MedianReportDelay != time.Hour {
		t.Errorf("median delay = %v", st.MedianReportDelay)
	}
}

func TestUserReportsEmpty(t *testing.T) {
	st := UserReports(nil)
	if st.Reports != 0 || st.MedianReportDelay != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestVersionBreakdown(t *testing.T) {
	ds := syntheticDataset()
	ds["p2"] = []core.Record{
		{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot, OSVersion: "6.1"},
		{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(10 * time.Hour)), Boot: 2,
			Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
			PrevTime: int64(sim.Epoch.Add(9 * time.Hour)), OffSeconds: 80},
	}
	// Tag p1's boots with 8.0.
	for i := range ds["p1"] {
		if ds["p1"][i].Kind == core.KindBoot {
			ds["p1"][i].OSVersion = "8.0"
		}
	}
	s := New(ds, Options{})
	versions := DeviceVersions(ds)
	if versions["p1"] != "8.0" || versions["p2"] != "6.1" {
		t.Fatalf("versions = %v", versions)
	}
	rows := s.VersionBreakdown(versions)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	byV := map[string]VersionStats{}
	for _, r := range rows {
		byV[r.Version] = r
	}
	if byV["8.0"].Devices != 1 || byV["8.0"].Panics != 3 || byV["8.0"].Freezes != 1 {
		t.Errorf("8.0 = %+v", byV["8.0"])
	}
	if byV["6.1"].SelfShutdowns != 1 || byV["6.1"].Hours <= 0 {
		t.Errorf("6.1 = %+v", byV["6.1"])
	}
}

func TestVersionBreakdownUnknown(t *testing.T) {
	s := New(syntheticDataset(), Options{})
	rows := s.VersionBreakdown(nil)
	if len(rows) != 1 || rows[0].Version != "unknown" {
		t.Errorf("rows = %+v", rows)
	}
}

func TestFailureSeasonality(t *testing.T) {
	// Failures at hour 10 on day 0 (weekday) and hour 22 on day 5
	// (weekend).
	recs := []core.Record{
		{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot},
		{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(10*time.Hour + 90*time.Second)), Boot: 2,
			Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
			PrevTime: int64(sim.Epoch.Add(10 * time.Hour)), OffSeconds: 90},
		{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(5*24*time.Hour + 22*time.Hour + 80*time.Second)), Boot: 3,
			Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
			PrevTime: int64(sim.Epoch.Add(5*24*time.Hour + 22*time.Hour)), OffSeconds: 80},
	}
	s := New(map[string][]core.Record{"p": recs}, Options{})
	sea := s.FailureSeasonality()
	if sea.ByHour[10] != 1 || sea.ByHour[22] != 1 {
		t.Errorf("ByHour = %v", sea.ByHour)
	}
	if sea.Weekday != 1 || sea.Weekend != 1 {
		t.Errorf("weekday/weekend = %d/%d", sea.Weekday, sea.Weekend)
	}
	if sea.WeekdayPerDay <= 0 || sea.WeekendPerDay <= 0 {
		t.Errorf("rates = %v/%v", sea.WeekdayPerDay, sea.WeekendPerDay)
	}
}

func TestFailureSeasonalityEmpty(t *testing.T) {
	sea := New(nil, Options{}).FailureSeasonality()
	if sea.Weekday != 0 || sea.Weekend != 0 || sea.WeekdayPerDay != 0 {
		t.Errorf("empty seasonality = %+v", sea)
	}
}
