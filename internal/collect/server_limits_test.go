package collect

import (
	"bytes"
	"strings"
	"testing"
)

// TestServerStreamCap: a chunk that would grow a device's stream past
// MaxStreamBytes is rejected with "ERR stream too large", the stream it
// would have grown is kept, and FIN is how a finished stream is released —
// so a looping client cannot grow server memory without bound, and a
// well-behaved one is never penalised.
func TestServerStreamCap(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{MaxStreamBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	tr := NetTransport{}
	chunk := bytes.Repeat([]byte("x"), 40)

	if _, err := tr.UploadChunk(srv.Addr(), "capdev", 0, chunk); err != nil {
		t.Fatalf("first chunk under the cap rejected: %v", err)
	}
	_, err = tr.UploadChunk(srv.Addr(), "capdev", 40, chunk)
	if err == nil || !strings.Contains(err.Error(), "stream too large") {
		t.Fatalf("over-cap chunk: err = %v, want ERR stream too large", err)
	}
	// The rejection must not have dropped the stream.
	if n, _, err := tr.Offset(srv.Addr(), "capdev"); err != nil || n != 40 {
		t.Errorf("stream after rejection: n=%d err=%v, want the original 40 bytes", n, err)
	}

	// FIN releases the stream; the device can then start over from zero.
	if err := Fin(srv.Addr(), "capdev"); err != nil {
		t.Fatalf("FIN: %v", err)
	}
	if n, _, err := tr.Offset(srv.Addr(), "capdev"); err != nil || n != 0 {
		t.Errorf("stream after FIN: n=%d err=%v, want 0", n, err)
	}
	if err := Fin(srv.Addr(), "capdev"); err != nil {
		t.Errorf("FIN with no stream must still be OK: %v", err)
	}
	if _, err := tr.UploadChunk(srv.Addr(), "capdev", 0, chunk); err != nil {
		t.Errorf("chunking again after FIN: %v", err)
	}
}

// TestServerStreamCapDurable: the cap holds on the WAL-backed server too,
// and a rejected chunk is never WAL-logged — recovery cannot resurrect
// bytes the server refused.
func TestServerStreamCapDurable(t *testing.T) {
	store := NewCrashStore(nil)
	ds := NewDataset()
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{MaxStreamBytes: 64, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	tr := NetTransport{}
	chunk := bytes.Repeat([]byte("y"), 40)
	if _, err := tr.UploadChunk(srv.Addr(), "capdev", 0, chunk); err != nil {
		t.Fatal(err)
	}
	walAfterAccept := store.Size(walName)
	if _, err := tr.UploadChunk(srv.Addr(), "capdev", 40, chunk); err == nil {
		t.Fatal("over-cap chunk accepted on the durable server")
	}
	if store.Size(walName) != walAfterAccept {
		t.Error("rejected chunk reached the WAL")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// A restart on the same store sees exactly the accepted stream.
	ds2 := NewDataset()
	srv2, err := NewServerWith("127.0.0.1:0", ds2, ServerConfig{MaxStreamBytes: 64, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if n, _, err := tr.Offset(srv2.Addr(), "capdev"); err != nil || n != 40 {
		t.Errorf("recovered stream: n=%d err=%v, want 40", n, err)
	}
}
