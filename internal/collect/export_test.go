package collect

import (
	"os"
	"path/filepath"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	ds := NewDataset()
	ds.Put("phone-01", []byte("log one"))
	ds.Put("phone-02", []byte("log two, longer"))
	dir := t.TempDir()
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	back, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Devices(); len(got) != 2 {
		t.Fatalf("devices = %v", got)
	}
	for _, id := range []string{"phone-01", "phone-02"} {
		want, _ := ds.Get(id)
		got, ok := back.Get(id)
		if !ok || string(got) != string(want) {
			t.Errorf("%s: got %q, want %q", id, got, want)
		}
	}
}

func TestExportEmptyDataset(t *testing.T) {
	dir := t.TempDir()
	if err := ExportDir(NewDataset(), dir); err != nil {
		t.Fatal(err)
	}
	back, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Devices()) != 0 {
		t.Errorf("devices = %v", back.Devices())
	}
}

func TestExportRejectsUnsafeIDs(t *testing.T) {
	for _, id := range []string{"../escape", "a/b", "c\\d", "x:y"} {
		ds := NewDataset()
		ds.Put(id, []byte("x"))
		if err := ExportDir(ds, t.TempDir()); err == nil {
			t.Errorf("id %q exported", id)
		}
	}
}

func TestImportMissingManifest(t *testing.T) {
	if _, err := ImportDir(t.TempDir()); err == nil {
		t.Error("import of empty dir succeeded")
	}
}

func TestImportTruncatedLog(t *testing.T) {
	ds := NewDataset()
	ds.Put("p", []byte("full contents"))
	dir := t.TempDir()
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.log"), []byte("cut"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportDir(dir); err == nil {
		t.Error("truncated log accepted")
	}
}

func TestImportMissingLogFile(t *testing.T) {
	ds := NewDataset()
	ds.Put("p", []byte("data"))
	dir := t.TempDir()
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "p.log")); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportDir(dir); err == nil {
		t.Error("missing log accepted")
	}
}

func TestImportCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ImportDir(dir); err == nil {
		t.Error("corrupt manifest accepted")
	}
}

func TestExportOverwrites(t *testing.T) {
	dir := t.TempDir()
	ds := NewDataset()
	ds.Put("p", []byte("old"))
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	ds.Put("p", []byte("new data"))
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	back, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := back.Get("p")
	if string(got) != "new data" {
		t.Errorf("got %q", got)
	}
}
