package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/core"
)

// Extras renders the beyond-the-paper analyses: freeze downtimes, panic
// lead times, and per-device failure-rate dispersion.
func Extras(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Extras — analyses beyond the paper\n")

	fd := s.FreezeDowntimes()
	fmt.Fprintf(&b, "freeze outages (%d): median %.0f s, p90 %.0f s, max %.0f s\n",
		fd.Count, fd.MedianSeconds, fd.P90Seconds, fd.MaxSeconds)

	lt := s.PanicLeadTimes()
	fmt.Fprintf(&b, "panic-to-failure lead time (%d related): median %.0f s, p90 %.0f s\n",
		lt.Count, lt.MedianSeconds, lt.P90Seconds)

	fmt.Fprintf(&b, "per-device failure-rate dispersion (CV): %.2f\n", s.MTBFDispersion())
	per := s.PerDeviceMTBF()
	sort.Slice(per, func(i, j int) bool { return per[i].Device < per[j].Device })
	var rows [][]string
	for _, d := range per {
		mtbf := "-"
		if d.MTBFHours > 0 {
			mtbf = fmt.Sprintf("%.0f", d.MTBFHours)
		}
		rows = append(rows, []string{
			d.Device, fmt.Sprintf("%.0f", d.Hours),
			fmt.Sprintf("%d", d.Freezes), fmt.Sprintf("%d", d.SelfShutdowns), mtbf,
		})
	}
	b.WriteString(Table("", []string{"device", "hours", "freezes", "self-shut", "MTBF h"}, rows))
	return b.String()
}

// UserReportSummary renders the output-failure reports captured by the
// core.UserReporter extension.
func UserReportSummary(dataset map[string][]core.Record, truthOutputFailures int) string {
	st := analysis.UserReports(dataset)
	var b strings.Builder
	b.WriteString("Extension — user-reported output failures (section 7 future work)\n")
	fmt.Fprintf(&b, "reports collected: %d", st.Reports)
	if truthOutputFailures > 0 {
		fmt.Fprintf(&b, " of %d ground-truth output failures (%.0f%% coverage)",
			truthOutputFailures, 100*float64(st.Reports)/float64(truthOutputFailures))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "median failure-to-report delay: %v\n", st.MedianReportDelay)
	details := make([]string, 0, len(st.ByDetail))
	for d := range st.ByDetail {
		details = append(details, d)
	}
	sort.Strings(details)
	for _, d := range details {
		fmt.Fprintf(&b, "  %-40s %d\n", d, st.ByDetail[d])
	}
	return b.String()
}

// VersionTable renders the per-OS-version breakdown.
func VersionTable(s *analysis.Study, dataset map[string][]core.Record) string {
	rows := s.VersionBreakdown(analysis.DeviceVersions(dataset))
	var out [][]string
	for _, v := range rows {
		out = append(out, []string{
			v.Version,
			fmt.Sprintf("%d", v.Devices),
			fmt.Sprintf("%.0f", v.Hours),
			fmt.Sprintf("%d", v.Panics),
			fmt.Sprintf("%d", v.Freezes),
			fmt.Sprintf("%d", v.SelfShutdowns),
		})
	}
	return Table("Per-OS-version breakdown (deployment mix of section 6)",
		[]string{"Symbian", "phones", "hours", "panics", "freezes", "self-shut"}, out)
}

// Predictor renders the early-warning policy evaluation: the paper's
// Figure 5 coupling turned into an online alarm, scored against the data.
func Predictor(s *analysis.Study) string {
	var b strings.Builder
	b.WriteString("Extension — panic-based failure prediction\n")
	cfg := analysis.DefaultPredictorConfig()
	rep := s.EvaluatePredictor(cfg)
	fmt.Fprintf(&b, "policy: alarm on %v, horizon %v\n", cfg.AlarmCategories, cfg.Horizon)
	fmt.Fprintf(&b, "alarms %d, precision %.2f, recall %.2f, median warning %.0f s\n",
		rep.Alarms, rep.Precision, rep.Recall, rep.MedianWarningSeconds)
	b.WriteString("horizon sweep (precision / recall):\n")
	horizons := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour}
	for i, r := range s.PredictorSweep(cfg.AlarmCategories, horizons) {
		fmt.Fprintf(&b, "  %-8v p=%.2f r=%.2f\n", horizons[i], r.Precision, r.Recall)
	}
	return b.String()
}

// ExpFit renders the inter-failure goodness-of-fit test with a bootstrap
// confidence interval on the mean.
func ExpFit(s *analysis.Study) string {
	fit := s.InterFailureExpFit()
	var b strings.Builder
	b.WriteString("Extension — inter-failure time distribution\n")
	if fit.N == 0 {
		b.WriteString("no inter-failure intervals\n")
		return b.String()
	}
	verdict := "rejected"
	if fit.PassesKS {
		verdict = "not rejected"
	}
	fmt.Fprintf(&b, "intervals %d, mean %.0f h; KS D=%.4f (5%% critical %.4f): exponential hypothesis %s\n",
		fit.N, fit.MeanHours, fit.KS, fit.KSCritical05, verdict)
	if lo, hi := s.BootstrapCI(1000, 2007); hi > 0 {
		fmt.Fprintf(&b, "bootstrap 95%% CI for the mean inter-failure time: [%.0f, %.0f] h\n", lo, hi)
	}
	return b.String()
}

// SeasonalityChart renders the diurnal failure distribution.
func SeasonalityChart(s *analysis.Study) string {
	sea := s.FailureSeasonality()
	var b strings.Builder
	b.WriteString("Extension — failure seasonality (hour of day)\n")
	max := 0
	for _, c := range sea.ByHour {
		if c > max {
			max = c
		}
	}
	for h, c := range sea.ByHour {
		fmt.Fprintf(&b, "%02d:00 %5d %s\n", h, c, Bar(float64(c), float64(max), 40))
	}
	fmt.Fprintf(&b, "weekday failures/day %.2f, weekend %.2f\n", sea.WeekdayPerDay, sea.WeekendPerDay)
	return b.String()
}
