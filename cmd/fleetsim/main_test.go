package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestFleetsimRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-seed", "2", "-phones", "3", "-months", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(out, "phone-0") < 3 {
		t.Errorf("missing per-device rows:\n%s", out)
	}
	if !strings.Contains(out, "logger view:") || !strings.Contains(out, "coalescence:") {
		t.Errorf("missing summary:\n%s", out)
	}
}

func TestFleetsimVerbose(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-seed", "2", "-phones", "1", "-months", "1", "-v"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "boot#1 detected=first-boot") {
		t.Errorf("verbose record dump missing:\n%s", out)
	}
}

func TestFleetsimDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	_, err := capture(t, func() error {
		return run([]string{"-seed", "4", "-phones", "2", "-months", "1", "-dump", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var dumps []deviceDump
	if err := json.Unmarshal(blob, &dumps); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(dumps) != 2 {
		t.Fatalf("devices = %d", len(dumps))
	}
	for _, d := range dumps {
		if d.Device == "" || d.OSVersion == "" || d.ObservedHours <= 0 {
			t.Errorf("incomplete dump: %+v", d)
		}
		if len(d.Truth) == 0 || len(d.Records) == 0 {
			t.Errorf("%s: empty truth/records", d.Device)
		}
	}
}
