// Command forumstudy runs the section 4 web-forum pipeline: generate the
// synthetic corpus, filter and classify the posts, and print Table 1, the
// section 4.1 marginals, and the classifier's accuracy against the
// generator's ground truth.
//
// Usage:
//
//	forumstudy [-seed N] [-reports N] [-noise N] [-samples N]
package main

import (
	"flag"
	"fmt"
	"os"

	"symfail/internal/forum"
	"symfail/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "forumstudy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("forumstudy", flag.ContinueOnError)
	var (
		seed    = fs.Uint64("seed", 2007, "random seed")
		reports = fs.Int("reports", 533, "failure reports in the corpus")
		noise   = fs.Int("noise", 3500, "non-failure posts in the corpus")
		samples = fs.Int("samples", 3, "example posts to print")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	posts := forum.Generate(forum.GeneratorConfig{
		Seed: *seed, FailureReports: *reports, NoisePosts: *noise,
	})
	rep := forum.Analyze(posts)

	fmt.Println(report.Table1(rep))
	fmt.Println(report.Section41(rep))
	fmt.Printf("classifier accuracy vs generator ground truth: %.1f%%\n\n",
		100*forum.ClassificationAccuracy(posts))

	printed := 0
	for _, p := range posts {
		if !p.IsFailure || printed >= *samples {
			continue
		}
		c := forum.Classify(p)
		fmt.Printf("example report #%d (%s, %s %s):\n  %q\n  -> type=%s recovery=%s severity=%s\n",
			p.ID, p.Forum, p.Vendor, p.Model, p.Text, c.Type, c.Recovery, c.Severity)
		printed++
	}
	return nil
}
