package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestMonteCarloSmallRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-runs", "3", "-phones", "3", "-months", "2", "-parallel", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"3 replicas", "mtbfr_hours", "ci95-lo", "paper reference"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestMonteCarloRejectsBadRuns(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-runs", "0"}) }); err == nil {
		t.Error("runs=0 accepted")
	}
}
