package sim

import (
	"sync"
	"testing"
)

// drawSequence consumes n values from r.
func drawSequence(r *Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

// TestSplitStreamsConcurrentMatchSerial is the rngshare analyzer's dynamic
// counterpart: handing each goroutine its own Split() child is the one
// sanctioned way to use randomness across threads, and it must reproduce
// the single-goroutine sequences exactly — the schedule cannot leak in
// because the child states are fixed before the goroutines start.
// `make check` runs this under -race, which also proves the children share
// no state.
func TestSplitStreamsConcurrentMatchSerial(t *testing.T) {
	const n = 100000

	// Reference: one goroutine, children drained one after the other.
	parent := NewRand(20070625)
	c1, c2 := parent.Split(), parent.Split()
	want1 := drawSequence(c1, n)
	want2 := drawSequence(c2, n)
	wantParent := drawSequence(parent, n)

	// Same seed, same Split order, but the children race each other.
	parent2 := NewRand(20070625)
	d1, d2 := parent2.Split(), parent2.Split()
	var got1, got2 []uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		got1 = drawSequence(d1, n)
	}()
	go func() {
		defer wg.Done()
		got2 = drawSequence(d2, n)
	}()
	// The parent keeps drawing on the main goroutine while the children run:
	// Split handed out copies, so this must not perturb them (or they it).
	gotParent := drawSequence(parent2, n)
	wg.Wait()

	for i := range want1 {
		if got1[i] != want1[i] {
			t.Fatalf("child 1 diverged at draw %d: got %#x want %#x", i, got1[i], want1[i])
		}
		if got2[i] != want2[i] {
			t.Fatalf("child 2 diverged at draw %d: got %#x want %#x", i, got2[i], want2[i])
		}
		if gotParent[i] != wantParent[i] {
			t.Fatalf("parent diverged at draw %d: got %#x want %#x", i, gotParent[i], wantParent[i])
		}
	}
}

// TestSplitChildrenAreIndependentStreams guards against a Split
// implementation that aliases state: the two children and the parent must
// produce pairwise different streams (a shared-state bug would make a child
// replay or interleave another stream).
func TestSplitChildrenAreIndependentStreams(t *testing.T) {
	parent := NewRand(99)
	c1, c2 := parent.Split(), parent.Split()
	s1 := drawSequence(c1, 64)
	s2 := drawSequence(c2, 64)
	sp := drawSequence(parent, 64)
	same := func(a, b []uint64) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if same(s1, s2) {
		t.Fatal("children produced identical streams")
	}
	if same(s1, sp) || same(s2, sp) {
		t.Fatal("a child replays the parent stream")
	}
}
