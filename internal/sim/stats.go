package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a fixed-width-bin histogram over float64 samples, with an
// overflow bin for samples at or beyond the upper bound. It backs the
// reproduction of the paper's Figure 2 (reboot durations), Figure 3
// (burst lengths) and Figure 6 (running applications at panic time).
type Histogram struct {
	lo, hi   float64
	binWidth float64
	bins     []int
	overflow int
	under    int
	n        int
	sum      float64
	samples  []float64 // retained for exact quantiles
}

// NewHistogram returns a histogram over [lo, hi) with the given bin count.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic("sim: invalid histogram shape")
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		binWidth: (hi - lo) / float64(bins),
		bins:     make([]int, bins),
	}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.n++
	h.sum += v
	h.samples = append(h.samples, v)
	switch {
	case v < h.lo:
		h.under++
	case v >= h.hi:
		h.overflow++
	default:
		i := int((v - h.lo) / h.binWidth)
		if i >= len(h.bins) { // guard against FP edge at hi
			i = len(h.bins) - 1
		}
		h.bins[i]++
	}
}

// N returns the number of samples recorded.
func (h *Histogram) N() int { return h.n }

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) over the exact samples.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	s := append([]float64(nil), h.samples...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	idx := q * float64(len(s)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return s[lo]
	}
	frac := idx - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Bin returns the count in bin i and the bin's [lo, hi) range.
func (h *Histogram) Bin(i int) (count int, lo, hi float64) {
	return h.bins[i], h.lo + float64(i)*h.binWidth, h.lo + float64(i+1)*h.binWidth
}

// Bins returns the number of regular bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Overflow returns the count of samples ≥ hi.
func (h *Histogram) Overflow() int { return h.overflow }

// Underflow returns the count of samples < lo.
func (h *Histogram) Underflow() int { return h.under }

// ModeBin returns the index of the fullest regular bin (-1 if empty).
func (h *Histogram) ModeBin() int {
	best, bestCount := -1, 0
	for i, c := range h.bins {
		if c > bestCount {
			best, bestCount = i, c
		}
	}
	return best
}

// LocalMaxima returns indices of bins that are strictly fuller than both
// neighbours and hold at least minCount samples — used to verify the
// bimodality of the reboot-duration distribution.
func (h *Histogram) LocalMaxima(minCount int) []int {
	var out []int
	for i, c := range h.bins {
		if c < minCount {
			continue
		}
		left := 0
		if i > 0 {
			left = h.bins[i-1]
		}
		right := 0
		if i < len(h.bins)-1 {
			right = h.bins[i+1]
		}
		if c > left && c >= right {
			out = append(out, i)
		}
	}
	return out
}

// Render draws the histogram as ASCII art, width columns wide.
func (h *Histogram) Render(width int, format func(lo, hi float64) string) string {
	if width <= 0 {
		width = 50
	}
	max := 1
	for _, c := range h.bins {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for i, c := range h.bins {
		_, lo, hi := h.Bin(i)
		bar := strings.Repeat("#", c*width/max)
		label := format(lo, hi)
		fmt.Fprintf(&b, "%-18s %6d %s\n", label, c, bar)
	}
	if h.overflow > 0 {
		fmt.Fprintf(&b, "%-18s %6d\n", ">= upper", h.overflow)
	}
	return b.String()
}

// Counter counts occurrences of string keys and reports frequencies in a
// stable (descending count, then lexical) order.
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the count for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Total returns the sum of all counts.
func (c *Counter) Total() int { return c.total }

// Percent returns key's share of the total in percent (0 if empty).
func (c *Counter) Percent(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.counts[key]) / float64(c.total)
}

// KV is a key with its count.
type KV struct {
	Key   string
	Count int
}

// Sorted returns all keys ordered by descending count, ties broken
// lexically, so output is deterministic.
func (c *Counter) Sorted() []KV {
	out := make([]KV, 0, len(c.counts))
	for k, v := range c.counts {
		out = append(out, KV{Key: k, Count: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Keys returns all keys in lexical order.
func (c *Counter) Keys() []string {
	out := make([]string, 0, len(c.counts))
	for k := range c.counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
