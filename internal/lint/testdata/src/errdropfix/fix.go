// Package errdropfix exercises the errdrop analyzer: results of
// durability-critical calls (payload-bearing store operations, recovery
// tallies) must not be discarded.
package errdropfix

// Flash stands in for the phone's flash filesystem.
type Flash struct{}

func (f *Flash) Append(path string, data []byte) bool { return true }
func (f *Flash) Write(path string, data []byte) bool  { return true }
func (f *Flash) Read(path string) ([]byte, bool)      { return nil, false }
func (f *Flash) Delete(path string)                   {}

// Recovery stands in for the framed-log recovery outcome.
type Recovery struct {
	Clean int
	Lost  int
}

func RecoverLog(data []byte) Recovery { return Recovery{} }

// persist directly returns a critical call, so the wrapper closure makes
// it critical too.
func persist(f *Flash, data []byte) bool {
	return f.Append("log", data)
}

// good checks every outcome it provokes.
func good(f *Flash, data []byte) int {
	if !f.Append("log", data) {
		return 0
	}
	rec := RecoverLog(data)
	return rec.Clean
}

// bad drops outcomes in every flagged form.
func bad(f *Flash, data []byte) {
	f.Append("log", data)      // want: bare expression statement
	_ = f.Write("log", data)   // want: blank assignment
	go f.Append("log", data)   // want: go statement
	defer f.Write("log", data) // want: defer statement
	RecoverLog(data)           // want: dropped recovery tally
	persist(f, data)           // want: dropped wrapper result

	data2, _ := f.Read("log") // clean: Read carries no payload bytes
	_ = data2
	f.Delete("log") // clean: nothing to drop
}

// allowed demonstrates the reasoned escape hatch.
func allowed(f *Flash, data []byte) {
	//symlint:allow errdrop fixture demonstrates a reasoned suppression
	f.Append("log", data)
}
