// Package ackorderfix exercises the ackorder analyzer: replies to a
// connection must follow the WAL append+sync on every control-flow path,
// and no append may trail a reply.
package ackorderfix

import (
	"fmt"
	"net"
)

// WAL stands in for the collection tier's CrashStore.
type WAL struct{}

func (w *WAL) Append(name string, rec []byte) {}
func (w *WAL) Sync(name string)               {}

type server struct {
	wal *WAL
}

// Good: append, sync, then acknowledge.
func (s *server) handleGood(conn net.Conn, rec []byte) {
	s.wal.Append("wal", rec)
	s.wal.Sync("wal")
	fmt.Fprint(conn, "OK\n")
}

// Bad: the reply races the sync.
func (s *server) handleEarlyAck(conn net.Conn, rec []byte) {
	s.wal.Append("wal", rec)
	fmt.Fprint(conn, "OK\n") // want: reply before sync
	s.wal.Sync("wal")
}

// Bad: the append is not covered by the acknowledgement already sent.
func (s *server) handleLateAppend(conn net.Conn, rec []byte) {
	fmt.Fprint(conn, "OK\n")
	s.wal.Append("wal", rec) // want: append after reply
}

// commit is the boolean-correlated idiom from the real server: crash paths
// return false with the append possibly unsynced.
func (s *server) commit(rec []byte, crashed bool) bool {
	s.wal.Append("wal", rec)
	if crashed {
		return false
	}
	s.wal.Sync("wal")
	return true
}

// Good: the caller honors the verdict, so only the synced path replies.
func (s *server) handleCommit(conn net.Conn, rec []byte, crashed bool) {
	if !s.commit(rec, crashed) {
		return
	}
	fmt.Fprint(conn, "OK\n")
}

// Bad: ignoring the verdict acknowledges the crashed path too.
func (s *server) handleIgnoresVerdict(conn net.Conn, rec []byte, crashed bool) {
	s.commit(rec, crashed)
	fmt.Fprint(conn, "OK\n") // want: reply on the unsynced path
}

// Good: an ERR rejection is not an acknowledgement.
func (s *server) handleReject(conn net.Conn, rec []byte) {
	s.wal.Append("wal", rec)
	fmt.Fprintf(conn, "ERR %s\n", "backpressure")
	s.wal.Sync("wal")
}

// Bad on the second iteration only: the loop's first pass acknowledges,
// then the next append trails that reply.
func (s *server) handleLoop(conn net.Conn, recs [][]byte) {
	for _, rec := range recs {
		s.wal.Append("wal", rec) // want: append after first-iteration reply
		s.wal.Sync("wal")
		fmt.Fprint(conn, "OK\n")
	}
}

// Suppressed: a deliberate early acknowledgement with a stated reason.
func (s *server) handleAllowed(conn net.Conn, rec []byte) {
	s.wal.Append("wal", rec)
	//symlint:allow ackorder fixture demonstrates a reasoned suppression
	fmt.Fprint(conn, "OK\n")
	s.wal.Sync("wal")
}
