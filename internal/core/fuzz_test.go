package core_test

import (
	"testing"

	"symfail/internal/core"
)

// Fuzz targets: the log parsers must never panic on corrupt flash content —
// power loss can tear writes anywhere.

func FuzzParseRecords(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("{\"kind\":\"boot\",\"time\":1}\n"))
	f.Add([]byte("{\"kind\":\"panic\",\"time\":2,\"category\":\"USER\",\"ptype\":11}\nnot json\n"))
	f.Add(core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 9, Boot: 3, Detected: core.DetectedFreeze}))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs := core.ParseRecords(data)
		for _, r := range recs {
			// Whatever parses must re-encode without panicking.
			_ = core.EncodeRecord(r)
			_ = r.PanicKey()
			_ = r.When()
		}
	})
}

func FuzzParseBeat(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("{\"kind\":\"ALIVE\",\"time\":123}"))
	f.Add([]byte("{\"kind\":\"WHAT\",\"time\":1}"))
	f.Add(core.EncodeBeat(core.Beat{Kind: core.BeatReboot, Time: 55}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if beat, ok := core.ParseBeat(data); ok {
			switch beat.Kind {
			case core.BeatAlive, core.BeatReboot, core.BeatLowBat, core.BeatMAOff:
			default:
				t.Fatalf("accepted invalid beat kind %q", beat.Kind)
			}
		}
	})
}
