// Package symfail reproduces "How Do Mobile Phones Fail? A Failure Data
// Analysis of Symbian OS Smart Phones" (Cinque, Cotroneo, Kalbarczyk, Iyer —
// DSN 2007) end to end:
//
//   - a behavioural Symbian OS simulator (internal/symbos) and phone/user
//     model (internal/phone) stand in for the 25 physical handsets;
//   - the paper's failure data logger (internal/core) runs as a daemon on
//     every simulated phone;
//   - logs travel to a collection server (internal/collect);
//   - the analysis pipeline (internal/analysis) regenerates every table and
//     figure of section 6, and the forum-study pipeline (internal/forum)
//     regenerates section 4;
//   - internal/report renders them as text.
//
// This package is the public face: RunFieldStudy runs the instrumented
// fleet and returns the analysed study; RunForumStudy runs the web-forum
// pipeline. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package symfail

import (
	"fmt"
	"sync"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/collect/fleet"
	"symfail/internal/core"
	"symfail/internal/forum"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// FieldStudyConfig parameterises a full instrumented deployment.
type FieldStudyConfig struct {
	// Seed makes the whole study reproducible.
	Seed uint64
	// Phones is the fleet size (default 25, the paper's deployment).
	Phones int
	// Workers bounds how many device shards simulate concurrently: 0 means
	// GOMAXPROCS, 1 forces the fully serial run. Any worker count produces
	// byte-identical studies — fleet construction is always serial, every
	// device owns a private engine and RNG streams, and collection merges
	// are canonical and order-independent — so Workers trades nothing but
	// wall-clock time. See DESIGN.md §9.
	Workers int
	// Duration is the observation window (default 14 months).
	Duration time.Duration
	// JoinWindow staggers enrolment (default 9 months).
	JoinWindow time.Duration
	// Device optionally overrides the per-device calibration.
	Device func(seed uint64) phone.Config
	// Logger tunes the on-phone logger.
	Logger core.Config
	// Analysis tunes the pipeline thresholds (paper defaults when zero).
	Analysis analysis.Options
	// CollectorAddr, when non-empty, uploads every phone's log to a
	// collection server at that address over TCP instead of reading the
	// logs directly off the simulated flash.
	CollectorAddr string
	// UploadEvery additionally attaches a periodic on-device uploader
	// (simulated time) when a collector is configured. Periodic uploads
	// are what preserve the study data across service-visit master
	// resets: reading only the final flash loses everything logged before
	// a reset. Zero means a single upload at study end.
	UploadEvery time.Duration
	// Servers, on the RunFieldStudyWithFleet path, is the collection-fleet
	// shard count (0 or 1 runs the single durable server of the collector
	// path; >1 shards the fleet behind a device-hash router). Ignored by
	// RunFieldStudy and RunFieldStudyWithCollector.
	Servers int
	// Replicate / Quorum, on the RunFieldStudyWithFleet path with
	// Servers > 1, set the write-time replication factor R and write quorum
	// W (fleet.Config.Replicate / Quorum). 0 takes the fleet defaults
	// (R=3 capped at the live membership, W=min(2,R)); Replicate=1 switches
	// write-time replication off — the pre-quorum fleet, byte-exact.
	Replicate int
	Quorum    int
	// WithUserReporter additionally installs the output-failure reporting
	// extension (core.UserReporter) on every phone.
	WithUserReporter bool
	// WithDExc additionally installs the panic-only D_EXC baseline
	// collector on every phone; its logs land in BaselineDataset.
	WithDExc bool
	// Adversity arms the deterministic fault-injection layer (flash and
	// network). The zero value runs the pre-adversity study bit for bit.
	Adversity AdversityConfig
	// Progress, when set, is called after each device's log folds into the
	// study-wide streaming accumulator during final collection: done devices
	// out of total, plus a Peek at the running event counts. Calls are
	// serialised under a mutex; with parallel workers the completion order
	// is scheduling-dependent, but the final (done == total) Peek is not.
	Progress func(done, total int, p stream.Peek)
	// Monitor, when set on the RunFieldStudyWithCollector path, is wired to
	// the collection server's live record tap (ServerConfig.OnRecord) and
	// counts records as they are acknowledged mid-study. Monitor is the one
	// accumulator whose counts tolerate the tap's at-least-once delivery;
	// see its doc. Ignored when no collector is run on the caller's behalf.
	Monitor *stream.Monitor
	// LiveStudy, when set on the RunFieldStudyWithCollector path, is wired
	// to the same live record tap and additionally serves the collection
	// server's QUERY verb (current MTBF, decaying panic leaderboard,
	// windowed freeze rate) while the study runs. LiveStudy deduplicates
	// the tap's at-least-once delivery itself; see stream.LiveStudy. The
	// fleet path does not serve queries (each shard sees only its devices).
	LiveStudy *stream.LiveStudy

	// healTransport, set internally by the sharded fleet path, rides
	// uploads on collect.RetryNetTransport: fleet kill/handoff windows are
	// host-time phenomena (milliseconds) that must not surface to the
	// simulated uploader, whose shortest retry is half an hour of simulated
	// time — a window crossing a master reset would destroy records the
	// single-server study delivers, breaking dataset equivalence. Injected
	// network faults are unaffected (they ride above the retry layer).
	healTransport bool
}

// AdversityConfig calibrates the fault-injection layer. Everything is a
// pure function of the study seed: the same seed and config produce the
// same faults, byte for byte.
type AdversityConfig struct {
	// Flash arms the flash fault model on every phone (torn writes on
	// battery pull, bit rot, flash-full quota).
	Flash phone.FlashFaults
	// Net wraps every phone's uploader transport in deterministic network
	// adversity (refused connections, mid-transfer drops, payload
	// corruption, lost acknowledgements).
	Net collect.NetFaults
	// RetryBase/RetryMax arm the uploader's exponential backoff between
	// periodic ticks (zero RetryBase leaves retrying to the next tick).
	RetryBase, RetryMax time.Duration
	// ServerCrash injects collection-server crashes: the supervisor kills
	// the server at drawn crashpoints mid-study and restarts it from its
	// write-ahead log (see collect.Supervisor). Only meaningful on the TCP
	// collector path (RunFieldStudyWithCollector).
	ServerCrash collect.CrashFaults
	// ServerCompactWAL overrides the WAL size that triggers server
	// snapshot compaction (zero keeps collect.DefaultCompactEvery); small
	// values make short chaos runs exercise the compaction crashpoints.
	ServerCompactWAL int
	// FleetJoinAfter / FleetLeaveAfter, on the RunFieldStudyWithFleet path
	// with Servers > 1, respectively add and retire one shard after that
	// many routed requests — a mid-study scale-up/scale-down with live
	// rebalancing (fleet.Config.JoinAfter / LeaveAfter).
	FleetJoinAfter  int
	FleetLeaveAfter int
}

// Enabled reports whether any adversity is armed.
func (c AdversityConfig) Enabled() bool {
	return c.Flash.Enabled() || c.Net.Enabled() || c.ServerCrash.Enabled()
}

// DefaultFieldStudyConfig mirrors the paper's deployment.
func DefaultFieldStudyConfig(seed uint64) FieldStudyConfig {
	return FieldStudyConfig{
		Seed:       seed,
		Phones:     25,
		Duration:   phone.StudyDuration,
		JoinWindow: 9 * phone.StudyMonth,
	}
}

// FieldStudy is a completed deployment: the simulated fleet, its loggers,
// the collected dataset and the analysed study.
type FieldStudy struct {
	Fleet   *phone.Fleet
	Loggers []*core.Logger
	Dataset *collect.Dataset
	Study   *analysis.Study

	// Reporters holds the user-report extensions (nil entries when the
	// extension was not enabled).
	Reporters []*core.UserReporter
	// BaselineDataset holds the D_EXC panic-only logs when enabled.
	BaselineDataset *collect.Dataset
	// Uploaders holds the per-device periodic uploaders (aligned with
	// Fleet.Devices) when the TCP collector path with periodic uploads was
	// configured; nil otherwise. Their counters — retries, resumes,
	// reconnects, bytes retransmitted — are the client-side ledger of what
	// the injected adversity cost.
	Uploaders []*collect.Uploader
}

// RunFieldStudy builds the fleet, installs the logger on every phone, runs
// the observation window, collects the logs and analyses them.
func RunFieldStudy(cfg FieldStudyConfig) (*FieldStudy, error) {
	if cfg.Phones <= 0 {
		cfg.Phones = 25
	}
	if cfg.Duration <= 0 {
		cfg.Duration = phone.StudyDuration
	}
	if cfg.JoinWindow < 0 {
		return nil, fmt.Errorf("symfail: negative join window")
	}

	fleet := phone.NewFleet(phone.FleetConfig{
		Seed:       cfg.Seed,
		Phones:     cfg.Phones,
		Duration:   cfg.Duration,
		JoinWindow: cfg.JoinWindow,
		Device:     cfg.Device,
		Flash:      cfg.Adversity.Flash,
		Workers:    cfg.Workers,
	})
	loggers := make([]*core.Logger, 0, len(fleet.Devices))
	var reporters []*core.UserReporter
	var baselines []*core.DExc
	var uploaders []*collect.Uploader
	for _, d := range fleet.Devices {
		l := core.Install(d, cfg.Logger)
		loggers = append(loggers, l)
		if cfg.WithUserReporter {
			reporters = append(reporters, core.InstallUserReporter(d, core.UserReporterConfig{}))
		}
		if cfg.WithDExc {
			baselines = append(baselines, core.InstallDExc(d, ""))
		}
		if cfg.CollectorAddr != "" && cfg.UploadEvery > 0 {
			ucfg := collect.UploaderConfig{
				Every:     cfg.UploadEvery,
				RetryBase: cfg.Adversity.RetryBase,
				RetryMax:  cfg.Adversity.RetryMax,
			}
			var inner collect.Transport
			if cfg.healTransport {
				inner = collect.RetryNetTransport{}
			}
			if cfg.Adversity.Net.Enabled() {
				// One Split child drives the injected faults, another the
				// retry jitter; both are derived here, in device order, so
				// the whole adversity run is a function of the seed.
				ucfg.Transport = collect.NewFaultyTransport(inner, cfg.Adversity.Net, d.SplitRand())
				ucfg.Rng = d.SplitRand()
			} else {
				ucfg.Transport = inner
			}
			uploaders = append(uploaders, collect.AttachUploaderWith(d, cfg.CollectorAddr, l.Config().LogPath, ucfg))
		}
	}
	if err := fleet.Run(); err != nil {
		return nil, fmt.Errorf("symfail: run fleet: %w", err)
	}

	// Final collection is sharded like the run itself: each device's log
	// travels independently, and both Dataset.Put and the server's chunk
	// merge are canonical per device, so collection order cannot change the
	// collected bytes. Each shard also folds its device into a private
	// streaming accumulator and merges it into the study-wide one — device
	// sets are disjoint, so the merge order cannot change the analysis
	// (DESIGN.md §11) — which is what gives Progress its online view and
	// the direct path its single-pass Study.
	ds := collect.NewDataset()
	total := len(loggers)
	// On the TCP path the accumulator is only needed for Progress — the
	// Study is re-analysed from the server's dataset afterwards.
	needAcc := cfg.CollectorAddr == "" || cfg.Progress != nil
	agg := stream.NewCollect(cfg.Analysis)
	var (
		aggMu sync.Mutex
		done  int
	)
	err := sim.RunShards(len(loggers), cfg.Workers, func(i int) error {
		id := fleet.Devices[i].ID()
		data := loggers[i].LogBytes()
		if cfg.CollectorAddr != "" {
			if err := uploadFinal(cfg.CollectorAddr, id, data); err != nil {
				return err
			}
		} else {
			ds.Put(id, data)
		}
		if !needAcc {
			return nil
		}
		part := stream.NewCollect(cfg.Analysis)
		feedLog(part, id, data)
		aggMu.Lock()
		defer aggMu.Unlock()
		if err := agg.Merge(part); err != nil {
			return err
		}
		done++
		if cfg.Progress != nil {
			cfg.Progress(done, total, agg.Peek())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// The direct path's Study comes straight from the merged accumulator.
	// On the TCP path the local dataset is empty — the data lives on the
	// caller's collection server (RunFieldStudyWithCollector re-analyses
	// from there) — so the legacy empty Study is preserved.
	var study *analysis.Study
	if cfg.CollectorAddr == "" {
		study = analysis.FromCollect(agg)
	} else {
		study = analysis.New(ds.AllRecords(), cfg.Analysis)
	}
	out := &FieldStudy{
		Fleet: fleet, Loggers: loggers, Dataset: ds, Study: study,
		Reporters: reporters, Uploaders: uploaders,
	}
	if cfg.WithDExc {
		out.BaselineDataset = collect.NewDataset()
		for i, x := range baselines {
			out.BaselineDataset.Put(fleet.Devices[i].ID(), x.LogBytes())
		}
	}
	return out, nil
}

// feedLog streams one device's raw log bytes into a collect accumulator
// through a sorting Feeder (the cursor input contract), with only this one
// device's records materialised.
func feedLog(c *stream.Collect, id string, data []byte) {
	f := &stream.Feeder{AddDevice: c.AddDevice, Observe: c.Observe}
	_ = f.Begin(id)
	_ = core.ScanRecords(data, func(r core.Record) error { return f.Record(id, r) })
	f.Flush()
}

// collectFromDataset rebuilds the study-wide accumulator from a collected
// dataset one device at a time: Dataset.Stream keeps a single device's log
// bytes in memory, and the Feeder's per-device record buffer is the only
// other allocation that scales with the data.
func collectFromDataset(ds *collect.Dataset, opts analysis.Options) (*stream.Collect, error) {
	c := stream.NewCollect(opts)
	f := &stream.Feeder{AddDevice: c.AddDevice, Observe: c.Observe}
	err := ds.Stream(f.Begin, f.Record)
	f.Flush()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// uploadFinal ships a device's end-of-study log, riding out collector
// restarts: an injected server crash can land mid-upload, in which case
// the client sees a dead connection, the supervisor replays the WAL and
// rebinds, and the retry re-sends the payload — harmless, because the
// server's merge is idempotent. A quorum-replicated fleet can also refuse
// the write outright while too many shards are suspected mid-restart;
// those retryable ERRs get a larger budget, because a below-quorum window
// clears on the fleet's own heartbeat cadence rather than a single shard
// rebind. The FIN afterwards retires the device's chunk stream on the
// server (best-effort bookkeeping; the data itself is already merged and
// acknowledged).
func uploadFinal(addr, id string, data []byte) error {
	var err error
	for attempt := 0; attempt < 600; attempt++ {
		if attempt > 0 {
			// Host-time pause: the collector is a real TCP server
			// restarting in host time, not simulated time. The pause never
			// influences simulation state — the fleet has already run.
			pause := time.Duration(attempt*attempt) * time.Millisecond
			if pause > 10*time.Millisecond {
				pause = 10 * time.Millisecond
			}
			time.Sleep(pause)
		}
		if err = collect.Upload(addr, id, data); err == nil {
			_ = collect.Fin(addr, id)
			return nil
		}
		if collect.IsBelowQuorum(err) {
			continue // clears on the fleet's heartbeat cadence: full budget
		}
		// Fail fast on protocol rejections — a parsed ERR is a real answer.
		// Transport-level windows (dead connection, unreachable shard) get
		// a generous budget: on a loaded single-CPU host a restarting
		// shard's WAL replay can easily outlive the first few capped pauses.
		if attempt >= 8 && !collect.IsTransient(err) {
			break
		}
		if attempt >= 120 {
			break
		}
	}
	return fmt.Errorf("symfail: upload %s: %w", id, err)
}

// collectorSeedSalt derives the collection tier's RNG stream from the
// study seed while keeping it independent of every device stream: killing
// the server more or less often must never change what happens on a phone.
const collectorSeedSalt = 0x636f6c6c656374

// beatSeedSalt derives the fleet heartbeat jitter stream — independent of
// both the device streams and the collection tier's kill/crashpoint stream,
// so beat cadence can never perturb either.
const beatSeedSalt = 0x62656174

// RunFieldStudyWithCollector runs the study uploading logs over TCP to a
// fresh local collection server, returning the study and the server's
// supervisor. The caller owns the supervisor's lifetime. Phones upload
// weekly (unless cfg.UploadEvery says otherwise), so data logged before a
// service-visit master reset survives on the server.
//
// The server is durable: every acknowledged verb is write-ahead-logged on
// a crash-faithful store before the ACK reaches the wire. When
// cfg.Adversity.ServerCrash is armed the supervisor kills the server at
// drawn crashpoints mid-study and restarts it from that log; with
// Workers:1 the whole crash/recover history is deterministic in the seed.
func RunFieldStudyWithCollector(cfg FieldStudyConfig) (*FieldStudy, *collect.Supervisor, error) {
	ds := collect.NewDataset()
	scfg := collect.SupervisorConfig{
		Crash:        cfg.Adversity.ServerCrash,
		CompactEvery: cfg.Adversity.ServerCompactWAL,
		Rng:          sim.NewRand(cfg.Seed ^ collectorSeedSalt),
	}
	if cfg.Monitor != nil {
		scfg.OnRecord = cfg.Monitor.Observe
	}
	if cfg.LiveStudy != nil {
		live := cfg.LiveStudy
		scfg.Query = live.Query
		if mon := scfg.OnRecord; mon != nil {
			scfg.OnRecord = func(id string, r core.Record) {
				mon(id, r)
				live.Observe(id, r)
			}
		} else {
			scfg.OnRecord = live.Observe
		}
	}
	sup, err := collect.NewSupervisor("127.0.0.1:0", ds, scfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.CollectorAddr = sup.Addr()
	if cfg.UploadEvery <= 0 {
		cfg.UploadEvery = 7 * 24 * time.Hour
	}
	fs, err := RunFieldStudy(cfg)
	if err != nil {
		_ = sup.Close()
		return nil, nil, err
	}
	if err := sup.Err(); err != nil {
		_ = sup.Close()
		return nil, nil, err
	}
	// Analyse the dataset that actually travelled over the wire, streaming
	// it one device at a time.
	fs.Dataset = ds
	c, err := collectFromDataset(ds, cfg.Analysis)
	if err != nil {
		_ = sup.Close()
		return nil, nil, err
	}
	fs.Study = analysis.FromCollect(c)
	return fs, sup, nil
}

// RunFieldStudyWithFleet runs the study uploading logs over TCP to a
// sharded collection fleet (cfg.Servers shards behind a device-hash
// router), returning the study and the fleet supervisor. The caller owns
// the supervisor's lifetime. With cfg.Servers <= 1 the fleet degenerates to
// exactly the RunFieldStudyWithCollector single server — same construction,
// same RNG consumption, byte-identical results.
//
// Every shard is the durable server of the collector path (own WAL, own
// crash store). When cfg.Adversity.ServerCrash is armed the fleet
// supervisor kills RNG-drawn subsets of {shards..., router} at the server
// crashpoints plus the fleet's handoff/rebalance points, dying shards hand
// their acked state to surviving peers, and FleetJoinAfter/FleetLeaveAfter
// rebalance membership mid-study. Whatever dies, the merged dataset holds
// every acknowledged record exactly once.
func RunFieldStudyWithFleet(cfg FieldStudyConfig) (*FieldStudy, *fleet.Supervisor, error) {
	servers := cfg.Servers
	if servers < 1 {
		servers = 1
	}
	fcfg := fleet.Config{
		Servers:      servers,
		Crash:        cfg.Adversity.ServerCrash,
		CompactEvery: cfg.Adversity.ServerCompactWAL,
		Rng:          sim.NewRand(cfg.Seed ^ collectorSeedSalt),
		JoinAfter:    cfg.Adversity.FleetJoinAfter,
		LeaveAfter:   cfg.Adversity.FleetLeaveAfter,
		Replicate:    cfg.Replicate,
		Quorum:       cfg.Quorum,
		BeatRng:      sim.NewRand(cfg.Seed ^ beatSeedSalt),
	}
	if cfg.Monitor != nil {
		fcfg.OnRecord = cfg.Monitor.Observe
	}
	fl, err := fleet.New(fcfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.CollectorAddr = fl.Addr()
	// Only the true fleet path heals transport windows: the degenerate
	// single server must keep the collector path's exact behaviour (its
	// request count feeds the crash schedule, so even an extra retry would
	// shift the kill pattern off the pinned golden).
	cfg.healTransport = servers > 1
	if cfg.UploadEvery <= 0 {
		cfg.UploadEvery = 7 * 24 * time.Hour
	}
	fs, err := RunFieldStudy(cfg)
	if err != nil {
		_ = fl.Close()
		return nil, nil, err
	}
	if err := fl.Err(); err != nil {
		_ = fl.Close()
		return nil, nil, err
	}
	// Analyse the fleet-wide merged dataset — the union over every shard,
	// live and departed, with the canonical merge deduplicating replicas.
	fs.Dataset = fl.MergedDataset()
	c, err := collectFromDataset(fs.Dataset, cfg.Analysis)
	if err != nil {
		_ = fl.Close()
		return nil, nil, err
	}
	fs.Study = analysis.FromCollect(c)
	return fs, fl, nil
}

// RunForumStudy generates the synthetic web-forum corpus and runs the
// section 4 pipeline over it.
func RunForumStudy(seed uint64) *forum.Report {
	return forum.Analyze(forum.Generate(forum.DefaultGeneratorConfig(seed)))
}

// ForumCorpus exposes the raw synthetic corpus for the examples.
func ForumCorpus(seed uint64) []forum.Post {
	return forum.Generate(forum.DefaultGeneratorConfig(seed))
}
