package symbos

import "fmt"

// Symbian system-wide error codes used as leave codes. Only the handful the
// simulation needs are defined.
const (
	KErrNone         = 0
	KErrNotFound     = -1
	KErrGeneral      = -2
	KErrNoMemory     = -4
	KErrNotSupported = -5
	KErrArgument     = -6
	KErrOverflow     = -9
	KErrInUse        = -14
	KErrServerBusy   = -16
	KErrDiskFull     = -26
	KErrDisconnected = -36
)

// ErrName returns a readable name for a Symbian error code.
func ErrName(code int) string {
	switch code {
	case KErrNone:
		return "KErrNone"
	case KErrNotFound:
		return "KErrNotFound"
	case KErrGeneral:
		return "KErrGeneral"
	case KErrNoMemory:
		return "KErrNoMemory"
	case KErrNotSupported:
		return "KErrNotSupported"
	case KErrArgument:
		return "KErrArgument"
	case KErrOverflow:
		return "KErrOverflow"
	case KErrInUse:
		return "KErrInUse"
	case KErrServerBusy:
		return "KErrServerBusy"
	case KErrDiskFull:
		return "KErrDiskFull"
	case KErrDisconnected:
		return "KErrDisconnected"
	default:
		return fmt.Sprintf("KErr(%d)", code)
	}
}

// leave is the internal carrier for the Symbian "leave" control transfer
// (the trap-leave technique the paper describes in section 2). It travels
// as a Go panic value and is recovered exclusively by Thread.Trap.
type leave struct {
	code int
}

func (l leave) String() string { return "leave " + ErrName(l.code) }
