package phone

import (
	"fmt"
	"time"

	"symfail/internal/sim"
)

// FleetConfig shapes a deployment of instrumented phones — the paper's
// study ran 25 phones for 14 months, with phones joining progressively
// from September 2005.
type FleetConfig struct {
	// Seed drives enrolment staggering and derives per-device seeds.
	Seed uint64
	// Phones is the number of devices (25 in the paper).
	Phones int
	// Duration is the observation window (14 months in the paper).
	Duration time.Duration
	// JoinWindow is the span over which phones join the study; a phone
	// joining late is observed for less time, like the paper's
	// progressively-deployed loggers.
	JoinWindow time.Duration
	// Device optionally customises the per-device calibration; when nil,
	// DefaultConfig is used with a derived seed and a persona drawn from
	// the default mix (set UniformPersonas to suppress the draw).
	Device func(seed uint64) Config
	// UniformPersonas keeps every default-config device on the balanced
	// persona (used by tests that pin rates).
	UniformPersonas bool
	// Flash arms the flash fault model on every device. Applied after the
	// persona/OS draws so enabling adversity does not change which persona
	// or OS version a device gets.
	Flash FlashFaults
}

// DefaultFleetConfig mirrors the paper's deployment.
func DefaultFleetConfig(seed uint64) FleetConfig {
	return FleetConfig{
		Seed:       seed,
		Phones:     25,
		Duration:   StudyDuration,
		JoinWindow: 9 * StudyMonth,
	}
}

// Fleet is a set of enrolled devices sharing one discrete-event engine.
type Fleet struct {
	Engine  *sim.Engine
	Devices []*Device
	cfg     FleetConfig
}

// osVersionMix reflects the study deployment: Symbian 6.1 to 8.0 or 9.0,
// with the majority on 8.0.
var osVersionMix = []struct {
	version string
	weight  float64
}{
	{"6.1", 12},
	{"7.0", 16},
	{"8.0", 56},
	{"9.0", 16},
}

// NewFleet builds and enrols the devices (phones join at deterministic,
// seed-derived offsets inside the join window). Call Run to simulate.
func NewFleet(cfg FleetConfig) *Fleet {
	if cfg.Phones <= 0 {
		panic("phone: fleet needs at least one phone")
	}
	eng := sim.NewEngine()
	r := sim.NewRand(cfg.Seed)
	fl := &Fleet{Engine: eng, cfg: cfg}
	for i := 0; i < cfg.Phones; i++ {
		devSeed := r.Uint64()
		devCfg := DefaultConfig(devSeed)
		if cfg.Device != nil {
			devCfg = cfg.Device(devSeed)
		} else if !cfg.UniformPersonas {
			weights := make([]float64, len(personaMix))
			for j, pm := range personaMix {
				weights[j] = pm.w
			}
			ApplyPersona(&devCfg, personaMix[r.WeightedIndex(weights)].p)
		}
		if devCfg.OSVersion == "" || devCfg.OSVersion == "8.0" {
			weights := make([]float64, len(osVersionMix))
			for j, v := range osVersionMix {
				weights[j] = v.weight
			}
			devCfg.OSVersion = osVersionMix[r.WeightedIndex(weights)].version
		}
		if cfg.Flash.Enabled() {
			devCfg.Flash = cfg.Flash
		}
		d := NewDevice(fmt.Sprintf("phone-%02d", i+1), eng, devCfg)
		var join time.Duration
		if cfg.JoinWindow > 0 {
			join = time.Duration(r.Float64() * float64(cfg.JoinWindow))
		}
		d.Enroll(sim.Epoch.Add(join))
		fl.Devices = append(fl.Devices, d)
	}
	return fl
}

// Run simulates the whole observation window and finalises every device.
func (f *Fleet) Run() error {
	if err := f.Engine.Run(sim.Epoch.Add(f.cfg.Duration)); err != nil {
		return err
	}
	for _, d := range f.Devices {
		d.Finalize()
	}
	return nil
}

// ObservedHours sums powered-on hours across the fleet.
func (f *Fleet) ObservedHours() float64 {
	var total float64
	for _, d := range f.Devices {
		total += d.Oracle().ObservedHours
	}
	return total
}

// TruthFailures sums ground-truth freezes and self-shutdowns.
func (f *Fleet) TruthFailures() int {
	n := 0
	for _, d := range f.Devices {
		n += d.Oracle().Failures()
	}
	return n
}
