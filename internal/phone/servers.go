package phone

import (
	"strconv"
	"strings"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// Client/server operation codes understood by the firmware servers and the
// per-application services.
const (
	// OpPing is answered with KErrNone by every service.
	OpPing = iota + 1
	// OpCorruptComplete makes the service complete the request through a
	// null RMessagePtr (a planted defect used by the fault model).
	OpCorruptComplete
	// OpListApps (Application Architecture Server) responds with the
	// comma-separated list of running user-visible applications.
	OpListApps
	// OpRecentActivity (Database Log Server) responds with the serialised
	// recent activity records.
	OpRecentActivity
	// OpBatteryStatus (System Agent Server) responds "ok" or "low".
	OpBatteryStatus
	// OpSendMessage (Message Server) accepts an outgoing SMS and responds
	// with a delivery report descriptor.
	OpSendMessage
)

// Firmware server names.
const (
	SrvAppArch  = "AppArchSrv"
	SrvDBLog    = "DBLogSrv"
	SrvSysAgent = "SysAgentSrv"
	SrvMessage  = "MsgSrv"
)

// ActivityRecord is one entry of the Database Log Server: a phone activity
// (voice call, message, ...) with its time span. End is sim.Never while the
// activity is still in progress.
type ActivityRecord struct {
	Kind  Activity
	Start sim.Time
	End   sim.Time
}

// Ongoing reports whether the activity is still in progress.
func (a ActivityRecord) Ongoing() bool { return a.End == sim.Never }

// appendActivity serialises records for the OpRecentActivity response into
// dst ("kind@start:end;...") — the hot path builds the descriptor in the
// device's scratch buffer instead of Sprintf+Join garbage.
func appendActivity(dst []byte, recs []ActivityRecord) []byte {
	for i, r := range recs {
		if i > 0 {
			dst = append(dst, ';')
		}
		end := int64(-1)
		if !r.Ongoing() {
			end = int64(r.End)
		}
		dst = append(dst, string(r.Kind)...)
		dst = append(dst, '@')
		dst = strconv.AppendInt(dst, int64(r.Start), 10)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, end, 10)
	}
	return dst
}

// encodeActivity serialises records for the OpRecentActivity response.
func encodeActivity(recs []ActivityRecord) string {
	return string(appendActivity(nil, recs))
}

// DecodeActivity parses an OpRecentActivity response. Malformed entries are
// skipped, matching how a defensive client treats a flaky server.
func DecodeActivity(s string) []ActivityRecord {
	if s == "" {
		return nil
	}
	var out []ActivityRecord
	for _, part := range strings.Split(s, ";") {
		kindSpan := strings.SplitN(part, "@", 2)
		if len(kindSpan) != 2 {
			continue
		}
		span := strings.SplitN(kindSpan[1], ":", 2)
		if len(span) != 2 {
			continue
		}
		start, err1 := strconv.ParseInt(span[0], 10, 64)
		end, err2 := strconv.ParseInt(span[1], 10, 64)
		if err1 != nil || err2 != nil {
			continue
		}
		r := ActivityRecord{Kind: Activity(kindSpan[0]), Start: sim.Time(start)}
		if end < 0 {
			r.End = sim.Never
		} else {
			r.End = sim.Time(end)
		}
		out = append(out, r)
	}
	return out
}

// startServers boots the firmware system servers on the current kernel.
// They are critical servers (system=true): the paper observes that panics
// inside them reboot the phone.
func (d *Device) startServers() {
	d.fileSrv = symbos.NewFileServer(d.kernel, d.fs)
	d.props.Define(symbos.PropBatteryLevel, int(d.battery*100))
	d.props.Define(symbos.PropBatteryStatus, 0)
	d.props.Define(symbos.PropCallState, 0)
	d.appArch = symbos.NewServer(d.kernel, SrvAppArch, true, func(m *symbos.Message) {
		switch m.Op {
		case OpListApps:
			m.Respond(strings.Join(d.RunningApps(), ","))
			m.Complete(symbos.KErrNone)
		case OpPing:
			m.Complete(symbos.KErrNone)
		case OpCorruptComplete:
			m.NullifyPtr()
			m.Complete(symbos.KErrNone)
		default:
			m.Complete(symbos.KErrNotSupported)
		}
	})
	d.dbLog = symbos.NewServer(d.kernel, SrvDBLog, true, func(m *symbos.Message) {
		switch m.Op {
		case OpRecentActivity:
			// Encode straight from the log tail: the handler runs
			// synchronously, so no defensive copy is needed.
			d.srvScratch = appendActivity(d.srvScratch[:0], d.recentActivityView(10))
			m.Respond(string(d.srvScratch))
			m.Complete(symbos.KErrNone)
		case OpPing:
			m.Complete(symbos.KErrNone)
		case OpCorruptComplete:
			m.NullifyPtr()
			m.Complete(symbos.KErrNone)
		default:
			m.Complete(symbos.KErrNotSupported)
		}
	})
	d.sysAgent = symbos.NewServer(d.kernel, SrvSysAgent, true, func(m *symbos.Message) {
		switch m.Op {
		case OpBatteryStatus:
			status := "ok"
			if d.battery <= d.cfg.LowBatteryThreshold {
				status = "low"
			}
			d.srvScratch = append(d.srvScratch[:0], status...)
			d.srvScratch = append(d.srvScratch, ' ')
			d.srvScratch = strconv.AppendFloat(d.srvScratch, d.battery, 'f', 2, 64)
			m.Respond(string(d.srvScratch))
			m.Complete(symbos.KErrNone)
		case OpPing:
			m.Complete(symbos.KErrNone)
		default:
			m.Complete(symbos.KErrNotSupported)
		}
	})
	d.msgSrv = symbos.NewServer(d.kernel, SrvMessage, true, func(m *symbos.Message) {
		switch m.Op {
		case OpSendMessage:
			// The delivery report descriptor: long enough that a client
			// with an under-sized buffer hits the MSGS Client 3 path.
			m.Respond("delivery-report:" + m.Payload + ":accepted-by-smsc")
			m.Complete(symbos.KErrNone)
		case OpPing:
			m.Complete(symbos.KErrNone)
		case OpCorruptComplete:
			m.NullifyPtr()
			m.Complete(symbos.KErrNone)
		default:
			m.Complete(symbos.KErrNotSupported)
		}
	})
}

// FileServer exposes the F32 file server; on-phone software (the logger
// included) persists its files through it.
func (d *Device) FileServer() *symbos.FileServer { return d.fileSrv }

// AppArchServer exposes the Application Architecture Server (the logger's
// Running Applications Detector connects to it).
func (d *Device) AppArchServer() *symbos.Server { return d.appArch }

// DBLogServer exposes the Database Log Server (the logger's Log Engine
// connects to it).
func (d *Device) DBLogServer() *symbos.Server { return d.dbLog }

// SysAgentServer exposes the System Agent Server (the logger's Power
// Manager connects to it).
func (d *Device) SysAgentServer() *symbos.Server { return d.sysAgent }

// MessageServer exposes the Message Server.
func (d *Device) MessageServer() *symbos.Server { return d.msgSrv }

// recordActivityStart opens an activity record in the database log.
func (d *Device) recordActivityStart(kind Activity) {
	d.activityLog = append(d.activityLog, ActivityRecord{Kind: kind, Start: d.eng.Now(), End: sim.Never})
	if len(d.activityLog) > activityLogCap {
		d.activityLog = d.activityLog[len(d.activityLog)-activityLogCap:]
	}
}

// recordActivityEnd closes the most recent open record of the given kind.
func (d *Device) recordActivityEnd(kind Activity) {
	for i := len(d.activityLog) - 1; i >= 0; i-- {
		if d.activityLog[i].Kind == kind && d.activityLog[i].Ongoing() {
			d.activityLog[i].End = d.eng.Now()
			return
		}
	}
}

// recentActivity returns up to n most recent records, oldest first.
func (d *Device) recentActivity(n int) []ActivityRecord {
	return append([]ActivityRecord(nil), d.recentActivityView(n)...)
}

// recentActivityView is recentActivity without the defensive copy — for
// synchronous read-only consumers like the Database Log Server handler.
func (d *Device) recentActivityView(n int) []ActivityRecord {
	if len(d.activityLog) <= n {
		return d.activityLog
	}
	return d.activityLog[len(d.activityLog)-n:]
}

// publishBattery pushes the battery state onto the property bus (what the
// real System Agent does), waking subscribers like the logger's Power
// Manager.
func (d *Device) publishBattery() {
	if d.props == nil || d.state != StateOn {
		return
	}
	d.props.Set(symbos.PropBatteryLevel, int(d.battery*100))
	status := 0
	if d.battery <= d.cfg.LowBatteryThreshold {
		status = 1
	}
	d.props.Set(symbos.PropBatteryStatus, status)
}

// activityLogCap bounds the database log the way the real phone bounds its
// event log.
const activityLogCap = 64
