package fleet

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// exactlyOnce asserts every record of want appears exactly once in the
// merged dataset's view of dev.
func exactlyOnce(t *testing.T, f *Supervisor, dev string, want []byte) {
	t.Helper()
	merged := f.MergedDataset()
	counts := make(map[string]int)
	for _, r := range merged.Records(dev) {
		counts[string(core.EncodeRecord(r))]++
	}
	for _, r := range core.ParseRecords(want) {
		if n := counts[string(core.EncodeRecord(r))]; n != 1 {
			t.Errorf("%s: record t=%d present %d times in the merge, want exactly once", dev, r.Time, n)
		}
	}
}

// ackedExactlyOnce asserts the fleet-wide no-acknowledged-data-loss
// invariant: every acked key for every acked device is in the merge once.
func ackedExactlyOnce(t *testing.T, f *Supervisor) {
	t.Helper()
	merged := f.MergedDataset()
	for _, dev := range f.AckedDevices() {
		counts := make(map[string]int)
		for _, r := range merged.Records(dev) {
			counts[string(core.EncodeRecord(r))]++
		}
		for _, key := range f.AckedKeys(dev) {
			if counts[key] != 1 {
				t.Errorf("%s: acked record present %d times in the merge, want exactly once", dev, counts[key])
			}
		}
	}
}

// TestQuorumValidation: the fleet rejects impossible R/W combinations and
// resolves the documented defaults.
func TestQuorumValidation(t *testing.T) {
	if _, err := New(Config{Servers: 3, Replicate: 2, Quorum: 3}); err == nil {
		t.Error("W > R accepted")
	}
	if _, err := New(Config{Servers: 3, Replicate: -1}); err == nil {
		t.Error("negative R accepted")
	}
	f, err := New(Config{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if r, w := f.ReplicationFactor(), f.WriteQuorum(); r != 3 || w != 2 {
		t.Errorf("defaults resolved to R=%d W=%d, want R=3 W=2", r, w)
	}
}

// TestQuorumWriteReplication: with R=3 on three shards, every acknowledged
// upload is on the rendezvous owner AND both successors by the time the ACK
// returns — replication happens at write time, not at crash time — and the
// merge still holds every record exactly once despite the triple copies.
func TestQuorumWriteReplication(t *testing.T) {
	f, err := New(Config{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	logs := make(map[string][]byte)
	for i := 0; i < 9; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		logs[dev] = fleetTestLog(int64(100*i+1), int64(100*i+2))
		if err := collect.Upload(f.Addr(), dev, logs[dev]); err != nil {
			t.Fatalf("upload %s: %v", dev, err)
		}
	}

	for dev, data := range logs {
		want := core.ParseRecords(data)
		for _, m := range f.members {
			got, ok := m.ds.Get(dev)
			if !ok {
				t.Errorf("%s: shard %s holds no copy at R=3", dev, m.name)
				continue
			}
			counts := make(map[string]int)
			for _, r := range core.ParseRecords(got) {
				counts[string(core.EncodeRecord(r))]++
			}
			for _, r := range want {
				if counts[string(core.EncodeRecord(r))] != 1 {
					t.Errorf("%s: record t=%d not on shard %s exactly once", dev, r.Time, m.name)
				}
			}
		}
		exactlyOnce(t, f, dev, data)
	}
}

// TestQuorumKillAckingShardNoLoss is the acceptance scenario: power-cut the
// shard that acknowledged the write — supervisor disarmed first, so the
// OnCrash handoff never runs and nobody fails the data over. At R>=2 the
// ACK already covered a successor's WAL, so zero acknowledged records are
// lost; the cut shard's acked ledger survives to keep the check honest.
func TestQuorumKillAckingShardNoLoss(t *testing.T) {
	f, err := New(Config{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	live, _ := f.Members()
	logs := make(map[string][]byte)
	for i := 0; i < 12; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		logs[dev] = fleetTestLog(int64(10*i + 1))
		if err := collect.Upload(f.Addr(), dev, logs[dev]); err != nil {
			t.Fatal(err)
		}
	}

	// Cut the owner of phone-01 — the shard whose ACK the client trusted.
	victim, _ := Owner("phone-01", live)
	if err := f.CutPower(victim); err != nil {
		t.Fatal(err)
	}

	ackedExactlyOnce(t, f)
	for dev, data := range logs {
		exactlyOnce(t, f, dev, data)
	}

	// The fleet keeps serving with the survivors (2 >= W).
	uploadRetry(t, f.Addr(), "phone-01", fleetTestLog(777))
}

// TestR1KillAckingShardLoses is the negative control: with replication off
// (R=1) the same power cut destroys the only copy. The invariant machinery
// must SEE the loss — acked keys outlive the shard, the data does not —
// proving the R>=2 test above is falsifiable.
func TestR1KillAckingShardLoses(t *testing.T) {
	f, err := New(Config{Servers: 3, Replicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	live, _ := f.Members()
	for i := 0; i < 12; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		if err := collect.Upload(f.Addr(), dev, fleetTestLog(int64(10*i+1))); err != nil {
			t.Fatal(err)
		}
	}
	victim, _ := Owner("phone-01", live)
	if err := f.CutPower(victim); err != nil {
		t.Fatal(err)
	}

	merged := f.MergedDataset()
	lost := 0
	for _, dev := range f.AckedDevices() {
		counts := make(map[string]int)
		for _, r := range merged.Records(dev) {
			counts[string(core.EncodeRecord(r))]++
		}
		for _, key := range f.AckedKeys(dev) {
			if counts[key] == 0 {
				lost++
			}
		}
	}
	if lost == 0 {
		t.Error("R=1 power cut lost nothing — the kill-the-ACKing-shard test cannot be trusted to detect loss")
	}
}

// TestPartitionSuspectRejoin: a shard that is alive and WAL-syncing but
// unreachable from the router gets suspected — counted as a false
// suspicion, never confirmed dead — and routed around; when the partition
// heals, it rejoins without an epoch bump and without duplicating records.
func TestPartitionSuspectRejoin(t *testing.T) {
	f, err := New(Config{Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	live, _ := f.Members()
	// A device owned by shard-02, whose traffic the partition must reroute.
	dev := ""
	for i := 0; i < 64 && dev == ""; i++ {
		d := fmt.Sprintf("phone-%02d", i+1)
		if o, _ := Owner(d, live); o == "shard-02" {
			dev = d
		}
	}
	if dev == "" {
		t.Fatal("no device maps to shard-02")
	}
	base := fleetTestLog(1, 2)
	if err := collect.Upload(f.Addr(), dev, base); err != nil {
		t.Fatal(err)
	}
	epochBefore := f.Epoch()

	if err := f.Partition("shard-02", true); err != nil {
		t.Fatal(err)
	}
	// The first routed write discovers the partition (misses accrue inside
	// one forward loop), suspects the shard, and lands on a fallback.
	during := fleetTestLog(3)
	uploadRetry(t, f.Addr(), dev, append(append([]byte(nil), base...), during...))

	if got := f.Suspected(); len(got) != 1 || got[0] != "shard-02" {
		t.Fatalf("suspected = %v, want [shard-02]", got)
	}
	if f.FalseSuspicions() == 0 {
		t.Error("a healthy partitioned shard was suspected but not counted as a false suspicion")
	}
	if f.ConfirmedDead() != 0 {
		t.Error("a partitioned (alive, WAL-syncing) shard was confirmed dead")
	}

	if err := f.Partition("shard-02", false); err != nil {
		t.Fatal(err)
	}
	// Healed: beat rounds ride on routed traffic, so drive uploads until a
	// successful probe clears the suspicion.
	cleared := false
	for i := 0; i < 64 && !cleared; i++ {
		uploadRetry(t, f.Addr(), fmt.Sprintf("phone-%02d", i%9+1), fleetTestLog(int64(5000+i)))
		cleared = len(f.Suspected()) == 0
	}
	if !cleared {
		t.Fatal("suspicion never cleared after the partition healed")
	}
	if got := f.Epoch(); got != epochBefore {
		t.Errorf("epoch churned %d -> %d across a partition that never killed anyone", epochBefore, got)
	}
	if f.ConfirmedDead() != 0 {
		t.Error("confirmed-dead count moved on a partition-only run")
	}

	// Post-heal traffic routes to the original owner again, and the merge
	// holds everything exactly once — replicas, reroutes, rejoin and all.
	after := fleetTestLog(9)
	uploadRetry(t, f.Addr(), dev, after)
	exactlyOnce(t, f, dev, append(append(append([]byte(nil), base...), during...), after...))
	ackedExactlyOnce(t, f)
}

// TestBelowQuorumDegradation: kill shards until fewer than W are available
// — writes are refused with the retryable below-quorum ERR (one degraded
// window, not one per refusal), nothing acknowledged is lost, and once a
// join restores quorum the same uploads succeed.
func TestBelowQuorumDegradation(t *testing.T) {
	f, err := New(Config{Servers: 3, Rng: sim.NewRand(3)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	logs := make(map[string][]byte)
	for i := 0; i < 9; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		logs[dev] = fleetTestLog(int64(10*i + 1))
		if err := collect.Upload(f.Addr(), dev, logs[dev]); err != nil {
			t.Fatal(err)
		}
	}

	// Two power cuts take the three-shard fleet below W=2.
	if err := f.CutPower("shard-01"); err != nil {
		t.Fatal(err)
	}
	if err := f.CutPower("shard-02"); err != nil {
		t.Fatal(err)
	}
	err = collect.Upload(f.Addr(), "phone-01", fleetTestLog(500))
	if err == nil {
		t.Fatal("below-quorum write was acknowledged")
	}
	if !collect.IsBelowQuorum(err) {
		t.Fatalf("below-quorum refusal not marked retryable: %v", err)
	}
	if got := f.DegradedWindows(); got != 1 {
		t.Errorf("degraded windows = %d, want 1", got)
	}
	if f.DegradedRequests() == 0 {
		t.Error("no refusal was counted while below quorum")
	}

	// Nothing acknowledged before the outage is lost: R=3 put every record
	// on the lone survivor too.
	ackedExactlyOnce(t, f)
	for dev, data := range logs {
		exactlyOnce(t, f, dev, data)
	}

	// A join restores quorum; the refused upload now succeeds.
	if err := f.Join(); err != nil {
		t.Fatal(err)
	}
	uploadRetry(t, f.Addr(), "phone-01", fleetTestLog(500))
	if got := f.DegradedWindows(); got != 1 {
		t.Errorf("degraded windows after recovery = %d, want still 1", got)
	}
	exactlyOnce(t, f, "phone-01", fleetTestLog(500))
	ackedExactlyOnce(t, f)
}

// TestConfirmDeadTriggersRepair: a power-cut shard accrues beat misses with
// process-level evidence (its supervisor is gone), so the detector may
// confirm it dead — epoch bump, anti-entropy repair back to full
// replication — with zero false suspicions, because the corpse never
// answered a ground-truth probe.
func TestConfirmDeadTriggersRepair(t *testing.T) {
	f, err := New(Config{Servers: 3, BeatEvery: 1, SuspectAfter: 2, ConfirmAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	for i := 0; i < 9; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		if err := collect.Upload(f.Addr(), dev, fleetTestLog(int64(10*i+1))); err != nil {
			t.Fatal(err)
		}
	}
	epochBefore := f.Epoch()
	if err := f.CutPower("shard-03"); err != nil {
		t.Fatal(err)
	}
	// Every routed request carries a beat (BeatEvery: 1); a handful of
	// misses confirms the corpse dead and triggers repair.
	for i := 0; i < 16 && f.ConfirmedDead() == 0; i++ {
		uploadRetry(t, f.Addr(), fmt.Sprintf("phone-%02d", i%9+1), fleetTestLog(int64(9000+i)))
	}
	if got := f.ConfirmedDead(); got != 1 {
		t.Fatalf("confirmed dead = %d, want 1", got)
	}
	if f.Epoch() != epochBefore+1 {
		t.Errorf("epoch %d after confirmation, want %d", f.Epoch(), epochBefore+1)
	}
	if f.Repairs() == 0 {
		t.Error("confirmation triggered no anti-entropy repair")
	}
	if f.FalseSuspicions() != 0 {
		t.Errorf("%d false suspicions against a genuine corpse", f.FalseSuspicions())
	}
	if err := f.Err(); err != nil {
		t.Fatal(err)
	}
	ackedExactlyOnce(t, f)
}

// TestQuorumNoGoroutineLeak extends the fleet leak check to the quorum
// machinery: kills and restarts, a partition raised and healed, a power
// cut, confirmation with repair, a join and a leave — and Close still
// returns the process to its original goroutine count. The heartbeat
// detector is request-driven, so there is no beat goroutine to leak by
// construction; this proves the rest of the shutdown is as clean.
func TestQuorumNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	f, err := New(Config{
		Servers: 3,
		Crash:   collect.CrashFaults{KillEveryMin: 3, KillEveryMax: 6},
		Rng:     sim.NewRand(23),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 6; i++ {
			dev := fmt.Sprintf("phone-%02d", i+1)
			uploadRetry(t, f.Addr(), dev, fleetTestLog(int64(10*round+i+1)))
		}
	}
	if err := f.Partition("shard-02", true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		uploadRetry(t, f.Addr(), fmt.Sprintf("phone-%02d", i+1), fleetTestLog(int64(100+i)))
	}
	if err := f.Partition("shard-02", false); err != nil {
		t.Fatal(err)
	}
	if err := f.CutPower("shard-03"); err != nil {
		t.Fatal(err)
	}
	if err := f.Join(); err != nil {
		t.Fatal(err)
	}
	if err := f.Leave(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		uploadRetry(t, f.Addr(), fmt.Sprintf("phone-%02d", i+1), fleetTestLog(int64(1000+i)))
	}
	if f.Crashes()+f.RouterKills() == 0 {
		t.Fatal("leak check ran without a single kill/restart cycle")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
