package collect

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// TestUploaderSurvivesTotalAckLoss is the two-generals drill: every single
// acknowledgement is lost, yet the server ends up with every record
// exactly once and the client never re-ships the payload it already
// delivered (the OFFSET resync tells it the server is ahead).
func TestUploaderSurvivesTotalAckLoss(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	eng := sim.NewEngine()
	d := phone.NewDevice("upl-ackloss", eng, quietConfig(11))
	l := core.Install(d, core.Config{})
	tr := NewFaultyTransport(nil, NetFaults{DropAckProb: 1}, sim.NewRand(99))
	u := AttachUploaderWith(d, srv.Addr(), l.Config().LogPath, UploaderConfig{
		Every:     6 * time.Hour,
		Transport: tr,
	})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}

	if u.Successes() != 0 {
		t.Errorf("successes = %d with every ACK dropped", u.Successes())
	}
	if u.LastErr() == nil {
		t.Error("LastErr nil while permanently failing")
	}
	// The data still arrived — the transfers themselves succeeded — and
	// the idempotent merge kept every record single.
	flash, _ := d.FS().Read(l.Config().LogPath)
	want := core.ParseRecords(flash)
	if len(want) == 0 {
		t.Fatal("nothing logged on flash")
	}
	counts := make(map[string]int)
	for _, r := range ds.Records("upl-ackloss") {
		counts[string(core.EncodeRecord(r))]++
	}
	for _, r := range want {
		if counts[string(core.EncodeRecord(r))] != 1 {
			t.Errorf("record %s present %d times server-side, want exactly 1",
				core.EncodeRecord(r), counts[string(core.EncodeRecord(r))])
		}
	}
	// After the first delivery the resync discovers the server is already
	// caught up, so later ticks re-send only the (empty) tail.
	if _, _, _, lost := tr.Injected(); lost < 2 {
		t.Errorf("ack-loss injected %d times, want every attempt", lost)
	}
}

// TestUploaderDeliversThroughFaultyNetwork runs the uploader against a
// 20%-faulty transport with retries enabled and requires the full log to
// land server-side anyway, each record exactly once.
func TestUploaderDeliversThroughFaultyNetwork(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	eng := sim.NewEngine()
	d := phone.NewDevice("upl-flaky", eng, quietConfig(12))
	l := core.Install(d, core.Config{})
	faults := NetFaults{RefuseProb: 0.08, DropProb: 0.04, CorruptProb: 0.04, DropAckProb: 0.04}
	u := AttachUploaderWith(d, srv.Addr(), l.Config().LogPath, UploaderConfig{
		Every:     6 * time.Hour,
		RetryBase: 15 * time.Minute,
		RetryMax:  3 * time.Hour,
		Rng:       sim.NewRand(5),
		Transport: NewFaultyTransport(nil, faults, sim.NewRand(6)),
	})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(10 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}

	if u.Successes() == 0 {
		t.Fatal("no upload ever succeeded through the faulty network")
	}
	flash, _ := d.FS().Read(l.Config().LogPath)
	counts := make(map[string]int)
	for _, r := range ds.Records("upl-flaky") {
		counts[string(core.EncodeRecord(r))]++
	}
	for _, r := range core.ParseRecords(flash) {
		if counts[string(core.EncodeRecord(r))] != 1 {
			t.Errorf("record %s present %d times server-side", core.EncodeRecord(r), counts[string(core.EncodeRecord(r))])
		}
	}
}

// TestFaultyTransportDeterministic: the same RNG seed must produce the
// identical injected-fault sequence — fault injection is a pure function
// of the seed.
func TestFaultyTransportDeterministic(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	run := func() (errs []string, injected [4]int) {
		tr := NewFaultyTransport(nil, NetFaults{RefuseProb: 0.3, DropProb: 0.2, CorruptProb: 0.2, DropAckProb: 0.2}, sim.NewRand(777))
		chunk := []byte("~deadbeef:000002:{}\n")
		for i := 0; i < 40; i++ {
			_, err := tr.UploadChunk(srv.Addr(), "det", i*0, chunk)
			if err != nil {
				errs = append(errs, err.Error())
			} else {
				errs = append(errs, "ok")
			}
		}
		injected[0], injected[1], injected[2], injected[3] = tr.Injected()
		return errs, injected
	}
	errs1, inj1 := run()
	errs2, inj2 := run()
	if inj1 != inj2 {
		t.Fatalf("injected fault counts differ across identical runs: %v vs %v", inj1, inj2)
	}
	if strings.Join(errs1, "|") != strings.Join(errs2, "|") {
		t.Fatal("fault sequences differ across identical seeds")
	}
	if inj1[0] == 0 || inj1[1] == 0 || inj1[2] == 0 {
		t.Errorf("fault mix did not exercise every mode: %v", inj1)
	}
}

// TestServerRejectsOversizedHeader: a client streaming an endless header
// line is cut off at MaxHeaderBytes instead of growing the server's
// buffer.
func TestServerRejectsOversizedHeader(t *testing.T) {
	srv, _ := newTestServer(t)
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("UPLOAD " + strings.Repeat("x", MaxHeaderBytes+32))); err != nil {
		t.Fatal(err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "ERR") {
		t.Errorf("oversized header accepted: %q", reply)
	}
}

// TestServerChunkProtocol exercises the resumable verbs over the raw wire:
// appends, the gap error, rewinds and the offset query.
func TestServerChunkProtocol(t *testing.T) {
	srv, ds := newTestServer(t)
	tr := NetTransport{}

	// Fresh device: offset query says 0.
	if n, _, err := tr.Offset(srv.Addr(), "proto"); err != nil || n != 0 {
		t.Fatalf("Offset on fresh device = %d, %v", n, err)
	}
	recA := core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 1, Boot: 1, Detected: core.DetectedFirstBoot})
	recB := core.EncodeRecord(core.Record{Kind: core.KindPanic, Time: 2, Category: "USER", PType: 11})
	if acked, err := tr.UploadChunk(srv.Addr(), "proto", 0, recA); err != nil || acked != len(recA) {
		t.Fatalf("first chunk: acked=%d err=%v", acked, err)
	}
	// A gap is rejected and stored state is unchanged.
	if _, err := tr.UploadChunk(srv.Addr(), "proto", len(recA)+10, recB); err == nil {
		t.Fatal("gap chunk accepted")
	}
	// The tail appends at the acknowledged offset.
	if acked, err := tr.UploadChunk(srv.Addr(), "proto", len(recA), recB); err != nil || acked != len(recA)+len(recB) {
		t.Fatalf("tail chunk: acked=%d err=%v", acked, err)
	}
	if recs := ds.Records("proto"); len(recs) != 2 {
		t.Fatalf("server parsed %d records, want 2", len(recs))
	}
	// Rewind to 0 (master reset): the stream restarts but the dataset
	// keeps the union.
	recC := core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 3, Boot: 1, Detected: core.DetectedFirstBoot, OSVersion: "9.0"})
	if acked, err := tr.UploadChunk(srv.Addr(), "proto", 0, recC); err != nil || acked != len(recC) {
		t.Fatalf("rewind chunk: acked=%d err=%v", acked, err)
	}
	if recs := ds.Records("proto"); len(recs) != 3 {
		t.Fatalf("post-reset merge lost records: %d, want 3", len(recs))
	}
	// Every acknowledged record is tracked.
	if keys := srv.AckedKeys("proto"); len(keys) != 3 {
		t.Fatalf("AckedKeys = %d, want 3", len(keys))
	}
}

// TestServerChunkRejectsCorruptPayload: a chunk whose checksum does not
// match is refused and leaves no trace.
func TestServerChunkRejectsCorruptPayload(t *testing.T) {
	srv, ds := newTestServer(t)
	conn, err := net.DialTimeout("tcp", srv.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "CHUNK corrupt 0 3 deadbeef\nabc")
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "ERR checksum") {
		t.Errorf("reply = %q", reply)
	}
	if _, ok := ds.Get("corrupt"); ok {
		t.Error("corrupt chunk stored")
	}
	if n, _, err := (NetTransport{}).Offset(srv.Addr(), "corrupt"); err != nil || n != 0 {
		t.Errorf("corrupt chunk advanced the stream to %d (err %v)", n, err)
	}
}
