package analysis

import (
	"encoding/json"
	"testing"
)

// TestPanicsHLEventsNoAliasing is the regression test for the shared-pointer
// leak: Panics and HLEvents used to hand out the study's internal event
// pointers, so callers mutating a result (reports, experiments) silently
// corrupted every later table. The accessors must return deep copies.
func TestPanicsHLEventsNoAliasing(t *testing.T) {
	s := New(randomDataset(1), Options{})
	before, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	// Vandalise everything the accessors return.
	for _, p := range s.Panics() {
		p.Category = "CORRUPTED"
		p.Type = -1
		p.Time = -1
		p.Activity = "corrupted"
		p.Burst = -1
		p.BurstLen = -1
		if len(p.Apps) > 0 {
			p.Apps[0] = "corrupted"
		}
		if p.Related != nil {
			p.Related.Kind = HLKind("corrupted")
			p.Related.Time = -1
			p.Related.OffSeconds = -1
		}
	}
	for _, hl := range s.HLEvents() {
		hl.Kind = HLKind("corrupted")
		hl.Time = -1
		hl.OffSeconds = -1
		hl.Device = "corrupted"
	}

	// A fresh study over the same dataset is the ground truth; the
	// vandalised study must still produce identical tables.
	after, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("mutating Panics/HLEvents results changed the study's tables:\nbefore %s\nafter  %s", before, after)
	}
}

// TestPanicsRelatedConsistentWithinCall: within one Panics() result, two
// panics coalesced to the same high-level event share one Related pointer,
// so callers can still group panics by event identity.
func TestPanicsRelatedConsistentWithinCall(t *testing.T) {
	// Scan seeds until one produces two panics sharing a related event.
	for seed := uint64(0); seed < 50; seed++ {
		s := New(randomDataset(seed), Options{})
		byInternal := make(map[*HLEvent][]*PanicEvent)
		panics := s.Panics()
		internal := s.allPanics()
		if len(panics) != len(internal) {
			t.Fatalf("seed %d: Panics() returned %d events, internally %d", seed, len(panics), len(internal))
		}
		for i, p := range panics {
			if (p.Related == nil) != (internal[i].Related == nil) {
				t.Fatalf("seed %d: panic %d Related nilness differs from internal", seed, i)
			}
			if p.Related == nil {
				continue
			}
			if p.Related == internal[i].Related {
				t.Fatalf("seed %d: panic %d Related aliases the internal event", seed, i)
			}
			byInternal[internal[i].Related] = append(byInternal[internal[i].Related], p)
		}
		for hl, group := range byInternal {
			for _, p := range group[1:] {
				if p.Related != group[0].Related {
					t.Errorf("seed %d: panics coalesced to the same internal event %v have distinct Related copies", seed, hl)
				}
			}
		}
	}
}
