// Package accmergefix is a symlint golden-test fixture for the accmerge
// analyzer. It is a self-contained miniature of the real layout: a Record
// type standing in for core.Record, an Accumulator interface and a
// RegisteredAccumulators table standing in for internal/analysis/stream.
package accmergefix

// Record mirrors core.Record.
type Record struct {
	Kind string
	Time int64
	Apps []string
}

// Accumulator mirrors stream.Accumulator.
type Accumulator interface {
	Observe(deviceID string, r Record)
	Merge(other Accumulator) error
	Snapshot() any
}

// RegisteredAccumulators stands in for stream.RegisteredAccumulators.
// "Ghost" has no implementation below, so the reverse check must flag it.
var RegisteredAccumulators = map[string]bool{
	"Counter":         true,
	"Hoarder":         true,
	"Nested":          true,
	"WindowedCounter": true,
	"DecayingHoarder": true,
	"Ghost":           true, // want: no implementation
}

// Counter is the clean case: registered, folds records into bounded state.
type Counter struct {
	perDevice map[string]int
	byKind    map[string]int
}

func (c *Counter) Observe(deviceID string, r Record) {
	c.perDevice[deviceID]++
	c.byKind[r.Kind]++
}
func (c *Counter) Merge(other Accumulator) error { return nil }
func (c *Counter) Snapshot() any                 { return c.byKind }

// Hoarder is registered but retains raw records in its state: every field
// holding Records (directly, in a slice, or behind a map) must lint.
type Hoarder struct {
	last Record              // want: retains Record
	all  []Record            // want: retains Record
	byID map[string][]Record // want: retains Record
	n    int
}

func (h *Hoarder) Observe(deviceID string, r Record) {
	h.last = r
	h.all = append(h.all, r)
	h.byID[deviceID] = append(h.byID[deviceID], r)
	h.n++
}
func (h *Hoarder) Merge(other Accumulator) error { return nil }
func (h *Hoarder) Snapshot() any                 { return h.n }

// hoard is a helper struct reachable from Nested's state; its retention
// must be found transitively.
type hoard struct {
	pending []Record // want: retains Record
	count   int
}

// Nested hides the retention one named type away.
type Nested struct {
	buf *hoard
}

func (n *Nested) Observe(deviceID string, r Record) {
	n.buf.pending = append(n.buf.pending, r)
	n.buf.count++
}
func (n *Nested) Merge(other Accumulator) error { return nil }
func (n *Nested) Snapshot() any                 { return n.buf.count }

// WindowedCounter is the continuous-operation clean case (mirrors
// stream.WindowAcc): records fold into per-day integer buckets — bounded
// state, re-snapshottable, no Record survives Observe.
type WindowedCounter struct {
	perDay  map[int]int
	byKind  map[int]map[string]int
	session map[string]int64
	maxDay  int
}

func (w *WindowedCounter) Observe(deviceID string, r Record) {
	day := int(r.Time / 86400)
	w.perDay[day]++
	m := w.byKind[day]
	if m == nil {
		m = make(map[string]int)
		w.byKind[day] = m
	}
	m[r.Kind]++
	w.session[deviceID] = r.Time
	if day > w.maxDay {
		w.maxDay = day
	}
}
func (w *WindowedCounter) Merge(other Accumulator) error { return nil }
func (w *WindowedCounter) Snapshot() any                 { return w.perDay }

// DecayingHoarder gets the windowed shape wrong: it keys buckets by day but
// keeps the raw records inside them, so the "window" still grows with the
// record stream, not the day count.
type DecayingHoarder struct {
	buckets map[int][]Record // want: retains Record
	maxDay  int
}

func (d *DecayingHoarder) Observe(deviceID string, r Record) {
	day := int(r.Time / 86400)
	d.buckets[day] = append(d.buckets[day], r)
	if day > d.maxDay {
		d.maxDay = day
	}
}
func (d *DecayingHoarder) Merge(other Accumulator) error { return nil }
func (d *DecayingHoarder) Snapshot() any                 { return d.maxDay }

// Rogue implements Accumulator but is missing from the registry, so the
// merge-law tests would never exercise it.
type Rogue struct { // want: not registered
	n int
}

func (r *Rogue) Observe(deviceID string, rec Record) { r.n++ }
func (r *Rogue) Merge(other Accumulator) error       { return nil }
func (r *Rogue) Snapshot() any                       { return r.n }

// Feeder is the exempt case: it buffers records but is not an Accumulator
// (mirrors stream.Feeder's one-device buffer), so it must not lint.
type Feeder struct {
	buf []Record
}

func (f *Feeder) Flush(acc Accumulator, id string) {
	for _, r := range f.buf {
		acc.Observe(id, r)
	}
	f.buf = f.buf[:0]
}
