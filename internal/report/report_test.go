package report

import (
	"strings"
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/core"
	"symfail/internal/forum"
	"symfail/internal/sim"
)

func TestTableAlignment(t *testing.T) {
	out := Table("Title", []string{"a", "long-header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "long-header") || !strings.Contains(lines[2], "---") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
	// All data lines equal length (alignment).
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("misaligned rows:\n%s", out)
	}
}

func TestTableWithoutTitle(t *testing.T) {
	out := Table("", []string{"h"}, [][]string{{"v"}})
	if strings.HasPrefix(out, "\n") {
		t.Errorf("leading newline with empty title: %q", out)
	}
}

func TestPct(t *testing.T) {
	if Pct(0) != "." {
		t.Errorf("Pct(0) = %q", Pct(0))
	}
	if Pct(12.345) != "12.35" {
		t.Errorf("Pct = %q", Pct(12.345))
	}
	if F1(3.14) != "3.1" {
		t.Errorf("F1 = %q", F1(3.14))
	}
}

func TestBar(t *testing.T) {
	if Bar(0, 10, 40) != "" || Bar(5, 0, 40) != "" {
		t.Error("degenerate bars should be empty")
	}
	if got := Bar(10, 10, 40); len(got) != 40 {
		t.Errorf("full bar length = %d", len(got))
	}
	if got := Bar(0.001, 10, 40); len(got) != 1 {
		t.Errorf("tiny bar length = %d", len(got))
	}
	if got := Bar(20, 10, 40); len(got) != 40 {
		t.Errorf("overflow bar length = %d", len(got))
	}
}

func TestIntHistogram(t *testing.T) {
	out := IntHistogram("T", "n", map[int]int{1: 10, 3: 5, 2: 0}, 20)
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "n=1") {
		t.Errorf("histogram output:\n%s", out)
	}
	// Keys sorted.
	i1 := strings.Index(out, "n=1")
	i3 := strings.Index(out, "n=3")
	if i1 < 0 || i3 < 0 || i1 > i3 {
		t.Errorf("keys not sorted:\n%s", out)
	}
}

// smallStudy builds a study from a synthetic dataset with one of everything.
func smallStudy() *analysis.Study {
	ds := map[string][]core.Record{
		"p1": {
			{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot},
			{Kind: core.KindPanic, Time: int64(sim.Epoch.Add(time.Hour)), Category: "KERN-EXEC", PType: 3,
				Apps: []string{"Messages"}, Activity: "voice-call"},
			{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(time.Hour + 4*time.Minute)), Boot: 2,
				Detected: core.DetectedFreeze, PrevBeat: core.BeatAlive,
				PrevTime: int64(sim.Epoch.Add(time.Hour + time.Minute)), OffSeconds: 180},
			{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(9*time.Hour + 85*time.Second)), Boot: 3,
				Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
				PrevTime: int64(sim.Epoch.Add(9 * time.Hour)), OffSeconds: 85},
			{Kind: core.KindBoot, Time: int64(sim.Epoch.Add(40 * time.Hour)), Boot: 4,
				Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
				PrevTime: int64(sim.Epoch.Add(32 * time.Hour)), OffSeconds: 28800},
		},
	}
	return analysis.New(ds, analysis.Options{})
}

func TestPaperRenderersProduceOutput(t *testing.T) {
	s := smallStudy()
	cases := map[string]string{
		"Figure 2":  Figure2(s),
		"Section 6": MTBF(s),
		"Table 2":   Table2(s),
		"Figure 3":  Figure3(s),
		"Figure 5":  Figure5(s),
		"Table 3":   Table3(s),
		"Figure 6":  Figure6(s),
		"Table 4":   Table4(s),
	}
	for name, out := range cases {
		if !strings.Contains(out, strings.Split(name, " ")[0]) {
			t.Errorf("%s renderer missing heading:\n%s", name, out)
		}
		if len(out) < 40 {
			t.Errorf("%s output suspiciously short: %q", name, out)
		}
	}
	sweep := Figure4Sweep(s, []time.Duration{time.Second, 5 * time.Minute, time.Hour})
	if !strings.Contains(sweep, "window") {
		t.Errorf("sweep output:\n%s", sweep)
	}
}

func TestFigure2ContentDetails(t *testing.T) {
	out := Figure2(smallStudy())
	if !strings.Contains(out, "shutdown events: 2") {
		t.Errorf("missing event count:\n%s", out)
	}
	if !strings.Contains(out, "self-shutdowns") {
		t.Errorf("missing self-shutdown line:\n%s", out)
	}
	if !strings.Contains(out, "median self-shutdown duration: 85 s") {
		t.Errorf("missing median line:\n%s", out)
	}
}

func TestTable2IncludesMeanings(t *testing.T) {
	out := Table2(smallStudy())
	if !strings.Contains(out, "KERN-EXEC 3") || !strings.Contains(out, "unhandled exception") {
		t.Errorf("table 2 content:\n%s", out)
	}
}

func TestForumRenderers(t *testing.T) {
	rep := forum.Analyze(forum.Generate(forum.GeneratorConfig{Seed: 1, FailureReports: 200, NoisePosts: 100}))
	t1 := Table1(rep)
	if !strings.Contains(t1, "Table 1") || !strings.Contains(t1, "freeze") {
		t.Errorf("table 1:\n%s", t1)
	}
	s41 := Section41(rep)
	if !strings.Contains(s41, "failure types by frequency") || !strings.Contains(s41, "severity") {
		t.Errorf("section 4.1:\n%s", s41)
	}
}

func TestExtraRenderers(t *testing.T) {
	s := smallStudy()
	if out := Extras(s); !strings.Contains(out, "freeze outages") || !strings.Contains(out, "MTBF h") {
		t.Errorf("extras:\n%s", out)
	}
	if out := Predictor(s); !strings.Contains(out, "precision") || !strings.Contains(out, "horizon sweep") {
		t.Errorf("predictor:\n%s", out)
	}
	if out := ExpFit(s); !strings.Contains(out, "inter-failure") {
		t.Errorf("expfit:\n%s", out)
	}
	// A study with no failures at all renders the degenerate fit line.
	empty := analysis.New(nil, analysis.Options{})
	if out := ExpFit(empty); !strings.Contains(out, "no inter-failure intervals") {
		t.Errorf("empty expfit:\n%s", out)
	}
	ds := map[string][]core.Record{
		"p1": {{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot, OSVersion: "8.0"}},
	}
	vs := analysis.New(ds, analysis.Options{})
	if out := VersionTable(vs, ds); !strings.Contains(out, "8.0") {
		t.Errorf("version table:\n%s", out)
	}
	ur := map[string][]core.Record{
		"p1": {{Kind: core.KindUserReport, Time: 7200 * 1e9, PrevTime: 3600 * 1e9, Detected: "wrong ringtone played"}},
	}
	if out := UserReportSummary(ur, 4); !strings.Contains(out, "25% coverage") {
		t.Errorf("user report summary:\n%s", out)
	}
	if out := UserReportSummary(nil, 0); !strings.Contains(out, "reports collected: 0") {
		t.Errorf("empty user report summary:\n%s", out)
	}
}

func TestSeasonalityChart(t *testing.T) {
	out := SeasonalityChart(smallStudy())
	if !strings.Contains(out, "seasonality") || !strings.Contains(out, "09:00") {
		t.Errorf("seasonality:\n%s", out)
	}
	if !strings.Contains(out, "weekday failures/day") {
		t.Errorf("missing rates line:\n%s", out)
	}
}
