// Package collect implements the study's log-collection infrastructure:
// instrumented phones periodically upload their consolidated Log Files to a
// collection server, where the analysis pipeline picks them up (the paper
// references an automated software infrastructure for transferring Log
// Files from the phones [1]).
//
// The transfer protocol is a deliberately simple line-oriented TCP
// exchange with three verbs:
//
//	client: UPLOAD <device-id> <n-bytes> <crc32c-hex>\n  then n raw bytes
//	server: OK\n on success, ERR <reason>\n otherwise
//
//	client: CHUNK <device-id> <offset> <n-bytes> <crc32c-hex>\n  then n raw bytes
//	server: OK <stream-length>\n on success, ERR <reason>\n otherwise
//
//	client: OFFSET <device-id>\n
//	server: OK <stream-length> <crc32c-hex>\n
//
//	client: FIN <device-id>\n
//	server: OK\n
//
//	peer:   HANDOFF <device-id> log|stream <n-bytes> <crc32c-hex>\n  then n raw bytes
//	server: OK\n on success, ERR <reason>\n otherwise
//
//	peer:   PING\n
//	server: OK\n
//
// HANDOFF is the server-to-server leg of the sharded collection fleet
// (see the fleet package): a dying or rebalancing shard replicates one
// device's merged log ("log") or live chunk stream ("stream") onto a peer.
// Handoffs go through the same WAL-sync-before-ACK commit path as uploads,
// so a successful handoff is the same durable promise, and merging stays
// idempotent — a handoff re-sent after a lost acknowledgement, or of data
// the peer already holds, never duplicates records. PING is the fleet's
// heartbeat probe: a one-line liveness check the failure detector beats
// against, answered without touching any durable state.
//
// With a write-quorum fleet (ServerConfig.Replicate) an UPLOAD or CHUNK is
// additionally forwarded to the device's rendezvous successors after the
// local WAL sync, and the OK goes on the wire only once a write quorum of
// replicas has synced it; a quorum that cannot be met is a retryable
// "ERR quorum ..." rejection (see IsBelowQuorum), never a false promise.
//
// UPLOAD is the legacy full-file transfer (still used for the final
// collection at study end). CHUNK appends to a per-device server-side
// stream at a client-stated offset, which is what makes uploads resumable:
// after a failure only the tail past the last acknowledged offset is
// re-sent, and OFFSET lets a client that lost an acknowledgement ask where
// the server actually stands. FIN retires a device's chunk stream once the
// client is done with it. The CRC-32C field guards every transfer — phones
// upload over flaky bearers — and a chunk is acknowledged only after its
// checksum verifies, so an acknowledgement is a durable promise: with a
// durable server (ServerConfig.Store) the verb is write-ahead-logged and
// synced before the ACK is written to the wire, and a Supervisor-restarted
// server replays the log, so even a crash on the very next instruction
// cannot take an acknowledged record with it (see wal.go, supervisor.go).
//
// Merging is idempotent per device: records are deduplicated by their
// serialized form, so re-sending data the server already holds (the
// inevitable outcome of a lost acknowledgement) never duplicates records.
package collect

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"symfail/internal/core"
)

// castagnoli is the CRC-32C table used for upload integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxUploadBytes bounds a single upload (a phone's full study log is well
// under a megabyte; anything larger is a protocol violation).
const MaxUploadBytes = 16 << 20

// ErrTooLarge is returned when an upload exceeds MaxUploadBytes.
var ErrTooLarge = errors.New("collect: upload too large")

// Dataset is the collected study data: the raw Log File bytes per device.
//
// Dataset is safe for concurrent use: every access to files happens under
// mu, and both Put and Get copy, so no caller ever holds a slice aliasing
// the stored bytes. Sharded fleet execution has phones on different worker
// goroutines uploading concurrently; per-device entries are independent
// keys, so concurrent uploads from different devices commute and
// same-device merges serialise under mu through the canonical,
// order-independent MergeRecords.
type Dataset struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{files: make(map[string][]byte)}
}

// Put stores (replaces) a device's log.
func (ds *Dataset) Put(deviceID string, data []byte) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.files[deviceID] = append([]byte(nil), data...)
}

// Get returns a copy of a device's log.
func (ds *Dataset) Get(deviceID string) ([]byte, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	data, ok := ds.files[deviceID]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Devices returns the device IDs present, sorted.
func (ds *Dataset) Devices() []string {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]string, 0, len(ds.files))
	for id := range ds.files {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Records parses a device's log into records.
func (ds *Dataset) Records(deviceID string) []core.Record {
	data, ok := ds.Get(deviceID)
	if !ok {
		return nil
	}
	return core.ParseRecords(data)
}

// AllRecords parses every device's log, keyed by device ID.
func (ds *Dataset) AllRecords() map[string][]core.Record {
	out := make(map[string][]core.Record)
	for _, id := range ds.Devices() {
		out[id] = ds.Records(id)
	}
	return out
}

// Stream iterates the dataset one device at a time in sorted device order,
// calling begin once per device and then fn once per record in log order —
// the bounded-memory alternative to AllRecords: only one device's log bytes
// are materialised at a time and no record slice is ever built. Either
// callback may be nil. An error from a callback stops the iteration and is
// returned. The device set is snapshotted up front; concurrent Puts for new
// devices are not picked up mid-stream.
func (ds *Dataset) Stream(begin func(deviceID string) error, fn func(deviceID string, r core.Record) error) error {
	for _, id := range ds.Devices() {
		if begin != nil {
			if err := begin(id); err != nil {
				return err
			}
		}
		if fn == nil {
			continue
		}
		data, ok := ds.Get(id)
		if !ok {
			continue
		}
		deviceID := id
		if err := core.ScanRecords(data, func(r core.Record) error {
			return fn(deviceID, r)
		}); err != nil {
			return err
		}
	}
	return nil
}

// MaxHeaderBytes caps the protocol header line; a client that streams an
// unterminated header cannot make the server buffer unboundedly.
const MaxHeaderBytes = 256

// ServerConfig tunes a collection server beyond its defaults. The zero
// value is the legacy in-memory server: no durable store, streams capped at
// MaxUploadBytes.
type ServerConfig struct {
	// MaxStreamBytes caps each device's server-side chunk stream; a CHUNK
	// that would grow the stream past the cap is rejected with
	// "ERR stream too large" (the stream itself is kept, and FIN drops it),
	// so a looping client cannot grow server memory without bound. Zero
	// means MaxUploadBytes.
	MaxStreamBytes int
	// Store, when set, makes the server durable: every accepted verb is
	// appended to a write-ahead log on the store and synced before the ACK
	// is written to the wire, and construction replays the store (see
	// wal.go). Nil keeps the legacy purely in-memory server.
	Store *CrashStore
	// CompactEvery triggers snapshot compaction once the WAL exceeds this
	// many bytes (zero means 1 MiB). Only meaningful with a Store.
	CompactEvery int

	// Replicate, when set, is the write-quorum hook: after a verb has been
	// WAL-synced locally (and merged into the dataset), the server calls it
	// with the committed state — op ReplicateLog carries the device's
	// resulting bytes (the full log for UPLOAD, the resulting stream for
	// CHUNK), op ReplicateFin carries nil — and acknowledges on the wire
	// only when it returns true. A false return means the write quorum was
	// not met: the server replies a retryable "ERR quorum ..." instead of
	// OK, keeping the committed state local (a later retry or anti-entropy
	// repair re-replicates it; the canonical merge makes that harmless).
	// The hook runs WITHOUT the server mutex held — it performs network
	// round-trips to peer shards, and two shards replicating to each other
	// while each holds its own mutex would deadlock — so the server
	// re-checks its own liveness when the hook returns. ReplicateFin
	// results are ignored (stream retirement is best-effort bookkeeping).
	// Nil keeps the exact single-copy commit path.
	Replicate func(op, deviceID string, state []byte) bool

	// OnRecord, when set, is called for every record the server newly
	// acknowledges — the live tap the streaming accumulators hang off.
	// It runs under the server mutex, so it must be fast and must not call
	// back into the server. Delivery is at-least-once, not exactly-once:
	// a supervisor-restarted incarnation starts with an empty acked ledger,
	// so records re-sent after a crash fire again. Consumers must therefore
	// be order- and duplicate-tolerant (stream.Monitor is; the exact
	// analysis accumulators are not — they re-read the merged Dataset at
	// study end instead).
	OnRecord func(deviceID string, r core.Record)

	// Query, when set, serves the read-only QUERY verb: the hook receives
	// the query name and arguments and returns a single-line answer
	// (conventionally compact JSON). Like PING, a QUERY is outside the
	// supervisor's request accounting — reads must not advance injected kill
	// schedules — and touches no durable state. The hook runs WITHOUT the
	// server mutex held (it typically locks a live accumulator of its own),
	// so it must be safe under concurrent uploads. Nil rejects QUERY with
	// "ERR queries not served".
	Query func(name string, args []string) (string, error)

	// monitor is the supervisor hook: it schedules injected crashes and is
	// told when this incarnation dies. Only the Supervisor sets it.
	monitor *Supervisor
}

// DefaultCompactEvery is the WAL size that triggers compaction when
// ServerConfig.CompactEvery is zero.
const DefaultCompactEvery = 1 << 20

// Server is the collection server. It serves every connection on its own
// goroutine and is safe under concurrent uploads from a sharded fleet:
// counters, streams and ackedKeys are only touched under mu, per-device
// streams are independent keys — two phones uploading simultaneously
// cannot observe each other — and one phone's uploads are serialised by
// the uploader that issues them. The dataset guards itself, but every
// server-side mutation of it happens under mu too (lock order: Server.mu
// then Dataset.mu), so a compaction snapshot can never miss a verb that
// was already WAL-synced.
type Server struct {
	ds       *Dataset
	listener net.Listener
	wg       sync.WaitGroup
	cfg      ServerConfig

	mu      sync.Mutex
	closed  bool
	uploads int
	// dead marks an incarnation killed by an injected crash: every handler
	// bails out at the next mu acquisition and the supervisor's replacement
	// owns the state from then on.
	dead        bool
	compactions int
	handoffs    int

	// streams holds the per-device chunk streams (the raw bytes the
	// device has pushed so far) and ackedKeys the serialized form of
	// every record the server has ever acknowledged — the ground truth
	// for the no-acknowledged-data-loss invariant.
	streams   map[string][]byte
	ackedKeys map[string]map[string]bool
}

// NewServer starts a collection server on addr ("127.0.0.1:0" picks a free
// port) feeding the given dataset.
func NewServer(addr string, ds *Dataset) (*Server, error) {
	return NewServerWith(addr, ds, ServerConfig{})
}

// NewServerWith starts a collection server with explicit configuration.
// When cfg.Store is set the server first recovers it — snapshot plus WAL
// replay, see recoverServerState — and resets the dataset to the recovered
// state, so restarting on the same store resumes exactly where the synced
// prefix left off.
func NewServerWith(addr string, ds *Dataset, cfg ServerConfig) (*Server, error) {
	if cfg.MaxStreamBytes <= 0 {
		cfg.MaxStreamBytes = MaxUploadBytes
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = DefaultCompactEvery
	}
	s := &Server{
		ds:        ds,
		cfg:       cfg,
		streams:   make(map[string][]byte),
		ackedKeys: make(map[string]map[string]bool),
	}
	if cfg.Store != nil {
		files, streams := recoverServerState(cfg.Store)
		ds.resetTo(files)
		s.streams = streams
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s.listener = l
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Uploads returns the number of successful uploads served.
func (s *Server) Uploads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploads
}

// Compactions returns how many snapshot compactions this incarnation ran.
func (s *Server) Compactions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// Close stops accepting connections and waits for in-flight uploads.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	// One stalled or malicious phone must not wedge the accept loop: the
	// whole exchange happens under a read deadline, the header line is
	// length-capped and the payload size is bounded before allocation.
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return
	}
	r := bufio.NewReader(conn)
	header, err := readLine(r, MaxHeaderBytes)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	fields := strings.Fields(header)
	if len(fields) == 0 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	if s.cfg.monitor != nil {
		// The supervisor counts recognised requests to schedule its next
		// injected kill. Called with no locks held.
		switch fields[0] {
		case "UPLOAD", "CHUNK", "OFFSET", "FIN", "HANDOFF":
			s.cfg.monitor.beginRequest(s)
		}
	}
	switch fields[0] {
	case "UPLOAD":
		s.handleUpload(conn, r, fields)
	case "CHUNK":
		s.handleChunk(conn, r, fields)
	case "OFFSET":
		s.handleOffset(conn, fields)
	case "FIN":
		s.handleFin(conn, fields)
	case "HANDOFF":
		s.handleHandoff(conn, r, fields)
	case "PING":
		s.handlePing(conn)
	case "QUERY":
		s.handleQuery(conn, fields)
	default:
		fmt.Fprint(conn, "ERR bad header\n")
	}
}

// handlePing answers the fleet's heartbeat probe. A PING is deliberately
// outside the supervisor's request accounting (it must not advance injected
// kill schedules) and touches no durable state: it only proves the server
// process is alive and accepting connections.
func (s *Server) handlePing(conn net.Conn) {
	if s.isDead() {
		return
	}
	fmt.Fprint(conn, "OK\n")
}

// handleQuery serves the read-only query verb. Like PING it is outside the
// supervisor's request accounting and touches no durable state: the answer
// comes entirely from the ServerConfig.Query hook (the live analysis tier),
// never from the dataset or the WAL.
func (s *Server) handleQuery(conn net.Conn, fields []string) {
	if s.isDead() {
		return
	}
	if s.cfg.Query == nil {
		fmt.Fprint(conn, "ERR queries not served\n")
		return
	}
	if len(fields) < 2 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	out, err := s.cfg.Query(fields[1], fields[2:])
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	if strings.ContainsAny(out, "\n") {
		fmt.Fprint(conn, "ERR query answer not single-line\n")
		return
	}
	fmt.Fprintf(conn, "OK %s\n", out)
}

// isDead reports whether this incarnation has been crashed (marked dead by
// an injected kill, before its supervisor finishes the restart).
func (s *Server) isDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead
}

// readLine reads one \n-terminated line of at most max bytes without ever
// buffering more than that.
func readLine(r *bufio.Reader, max int) (string, error) {
	var line []byte
	for len(line) < max {
		c, err := r.ReadByte()
		if err != nil {
			return "", fmt.Errorf("short header: %v", err)
		}
		if c == '\n' {
			return string(line), nil
		}
		line = append(line, c)
	}
	return "", errors.New("header too long")
}

// readBody reads a size-declared, checksum-guarded payload.
func readBody(r *bufio.Reader, size int, sum uint32) ([]byte, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("short body: %v", err)
	}
	if got := crc32.Checksum(data, castagnoli); got != sum {
		return nil, fmt.Errorf("checksum mismatch: got %08x want %08x", got, sum)
	}
	return data, nil
}

// handleUpload serves the legacy full-file transfer. Like handleChunk, the
// verb is WAL-logged and synced before the ACK goes on the wire.
func (s *Server) handleUpload(conn net.Conn, r *bufio.Reader, fields []string) {
	id, size, sum, err := parseHeader(fields)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	data, err := readBody(r, size, sum)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	if !s.commitLocked(walEntry{Op: opUpload, Dev: id, Data: data}) {
		return // injected crash: the connection dies without a reply
	}
	if s.cfg.Replicate != nil {
		if !s.replicateQuorumLocked(conn, ReplicateLog, id, data, data) {
			return
		}
		fmt.Fprint(conn, "OK\n")
		return
	}
	s.uploads++
	s.recordAckedLocked(id, data)
	s.ds.PutMerged(id, data)
	if s.maybeCompactLocked() {
		return
	}
	diedAfterAck := s.crashAtLocked(CrashAfterAck)
	if !diedAfterAck {
		s.mu.Unlock()
	}
	fmt.Fprint(conn, "OK\n")
}

// replicateQuorumLocked is the quorum-path tail of UPLOAD and CHUNK: with
// the verb already WAL-synced, it merges the committed state into the
// dataset (kept coupled with the commit so a compaction snapshot can never
// miss WAL-synced data), releases the server mutex for the replication
// round-trips, and on a met quorum performs the acknowledgement
// bookkeeping. Returns true with s.mu released and the positive reply
// still owed to conn; false when the caller must return without replying
// OK (crash consumed the request, incarnation died during replication, or
// quorum failed — the retryable ERR is already written). acked is the
// byte run whose records the ACK covers (the resulting stream for CHUNK).
func (s *Server) replicateQuorumLocked(conn net.Conn, op, id string, state, acked []byte) bool {
	s.ds.PutMerged(id, state)
	if s.maybeCompactLocked() {
		return false
	}
	s.mu.Unlock()
	met := s.cfg.Replicate(op, id, state)
	s.mu.Lock()
	if s.dead {
		// A fleet kill landed on this incarnation while it replicated; the
		// replacement owns the state now, and this connection dies without
		// a reply like any crashed request.
		s.mu.Unlock()
		return false
	}
	if !met {
		s.mu.Unlock()
		fmt.Fprint(conn, "ERR quorum not met: committed locally, not replicated (retryable)\n")
		return false
	}
	s.uploads++
	s.recordAckedLocked(id, acked)
	if s.crashAtLocked(CrashAfterAck) {
		return true // died after ack: recovery must reproduce the state, but the reply still goes out
	}
	s.mu.Unlock()
	return true
}

// handleChunk appends a verified chunk to the device's stream at the
// client-stated offset and acknowledges the resulting stream length. An
// offset short of the stream end rewinds it (the client re-synced after a
// log rotation or master reset); an offset past the end is a gap the
// client must resolve via OFFSET; a chunk that would grow the stream past
// the configured cap is rejected outright (the stream is kept — FIN is how
// a finished stream is dropped). Every accepted chunk is WAL-logged and
// synced, and the resulting stream merged into the dataset, before the ACK
// is sent: an acknowledgement is a durable promise even if the stream is
// later rewound or the process is killed on the next instruction.
func (s *Server) handleChunk(conn net.Conn, r *bufio.Reader, fields []string) {
	if len(fields) != 5 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	id := fields[1]
	offset, err := strconv.Atoi(fields[2])
	if err != nil || offset < 0 || offset > MaxUploadBytes {
		fmt.Fprint(conn, "ERR bad offset\n")
		return
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil || size < 0 || offset+size > MaxUploadBytes {
		fmt.Fprint(conn, "ERR bad size\n")
		return
	}
	crc, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		fmt.Fprint(conn, "ERR bad checksum\n")
		return
	}
	if offset+size > s.cfg.MaxStreamBytes {
		fmt.Fprint(conn, "ERR stream too large\n")
		return
	}
	chunk, err := readBody(r, size, uint32(crc))
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	stream := s.streams[id]
	if offset > len(stream) {
		n := len(stream)
		s.mu.Unlock()
		fmt.Fprintf(conn, "ERR gap: stream at %d, chunk at %d\n", n, offset)
		return
	}
	if !s.commitLocked(walEntry{Op: opChunk, Dev: id, Off: offset, Data: chunk}) {
		return
	}
	stream = append(stream[:offset:offset], chunk...)
	s.streams[id] = stream
	if s.cfg.Replicate != nil {
		if !s.replicateQuorumLocked(conn, ReplicateLog, id, stream, stream) {
			return
		}
		fmt.Fprintf(conn, "OK %d\n", len(stream))
		return
	}
	s.uploads++
	s.recordAckedLocked(id, stream)
	s.ds.PutMerged(id, stream)
	if s.maybeCompactLocked() {
		return
	}
	diedAfterAck := s.crashAtLocked(CrashAfterAck)
	if !diedAfterAck {
		s.mu.Unlock()
	}
	fmt.Fprintf(conn, "OK %d\n", len(stream))
}

// Replicate op values passed to ServerConfig.Replicate.
const (
	// ReplicateLog forwards the device's committed bytes (an UPLOAD's full
	// log, a CHUNK's resulting stream) — replicas take custody via HANDOFF.
	ReplicateLog = "log"
	// ReplicateFin propagates a stream retirement (state is nil).
	ReplicateFin = "fin"
)

// HandoffKind values accepted by the HANDOFF verb.
const (
	// HandoffLog replicates a device's merged log — the payload merges into
	// the dataset like an UPLOAD.
	HandoffLog = "log"
	// HandoffStream replicates a device's live chunk stream so the uploader
	// can keep CHUNKing at its acknowledged offset against the new shard. A
	// server that already has a non-empty stream for the device keeps its
	// own (the uploader is already mid-conversation with it; the sender
	// retains its copy, so skipping the install loses nothing).
	HandoffStream = "stream"
)

// handleHandoff accepts one device's replicated state from a peer server.
// Like UPLOAD, the payload is WAL-logged and synced before the OK goes on
// the wire, and its records join this server's acked ledger: once a peer
// has been told OK, the records are this shard's durable responsibility.
func (s *Server) handleHandoff(conn net.Conn, r *bufio.Reader, fields []string) {
	if len(fields) != 5 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	id, kind := fields[1], fields[2]
	if kind != HandoffLog && kind != HandoffStream {
		fmt.Fprint(conn, "ERR bad handoff kind\n")
		return
	}
	size, err := strconv.Atoi(fields[3])
	if err != nil || size < 0 || size > MaxUploadBytes {
		fmt.Fprint(conn, "ERR bad size\n")
		return
	}
	crc, err := strconv.ParseUint(fields[4], 16, 32)
	if err != nil {
		fmt.Fprint(conn, "ERR bad checksum\n")
		return
	}
	data, err := readBody(r, size, uint32(crc))
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	if kind == HandoffStream && len(s.streams[id]) > 0 {
		// Nothing committed, nothing to WAL: the live stream outranks the
		// replicated copy (see HandoffStream).
		s.mu.Unlock()
		fmt.Fprint(conn, "OK\n")
		return
	}
	op := opHandoff
	if kind == HandoffStream {
		op = opHandoffStream
	}
	if !s.commitLocked(walEntry{Op: op, Dev: id, Data: data}) {
		return
	}
	s.handoffs++
	if kind == HandoffStream {
		s.streams[id] = append([]byte(nil), data...)
	}
	s.recordAckedLocked(id, data)
	s.ds.PutMerged(id, data)
	if s.maybeCompactLocked() {
		return
	}
	diedAfterAck := s.crashAtLocked(CrashAfterAck)
	if !diedAfterAck {
		s.mu.Unlock()
	}
	fmt.Fprint(conn, "OK\n")
}

// Handoffs returns the peer handoffs this incarnation accepted.
func (s *Server) Handoffs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handoffs
}

// Stream returns a copy of a device's live chunk stream, if present.
func (s *Server) Stream(id string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st, ok := s.streams[id]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), st...), true
}

// handleOffset reports how much of the device's stream the server holds.
func (s *Server) handleOffset(conn net.Conn, fields []string) {
	if len(fields) != 2 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	stream := s.streams[fields[1]]
	n, sum := len(stream), crc32.Checksum(stream, castagnoli)
	s.mu.Unlock()
	fmt.Fprintf(conn, "OK %d %08x\n", n, sum)
}

// handleFin retires a device's chunk stream (the client is done uploading,
// typically after the study-end full UPLOAD). The retirement is WAL-logged
// so a restarted server does not resurrect the stream.
func (s *Server) handleFin(conn net.Conn, fields []string) {
	if len(fields) != 2 {
		fmt.Fprint(conn, "ERR bad header\n")
		return
	}
	id := fields[1]
	committed := false
	s.mu.Lock()
	if s.dead {
		s.mu.Unlock()
		return
	}
	if _, ok := s.streams[id]; ok {
		if !s.commitLocked(walEntry{Op: opFin, Dev: id}) {
			return
		}
		delete(s.streams, id)
		committed = true
	}
	s.mu.Unlock()
	if committed && s.cfg.Replicate != nil {
		// Propagate the retirement to the replicas so a handed-off stream
		// is not resurrected there. Best-effort: the ACK below promises
		// nothing durable (the study data is already merged and acked).
		_ = s.cfg.Replicate(ReplicateFin, id, nil)
	}
	fmt.Fprint(conn, "OK\n")
}

// commitLocked makes one verb durable: WAL append, then the sync barrier,
// with the supervisor's two pre-ACK crashpoints on either side of the sync.
// Returns false when an injected crash consumed the request — the caller
// must return immediately without replying (s.mu is already released).
// Without a store the verb commits trivially. Caller holds s.mu.
func (s *Server) commitLocked(e walEntry) bool {
	if s.cfg.Store == nil {
		return true
	}
	s.cfg.Store.Append(walName, encodeWALEntry(e))
	if s.crashAtLocked(CrashBeforeWALSync) {
		return false
	}
	s.cfg.Store.Sync(walName)
	if s.crashAtLocked(CrashAfterWALSync) {
		return false
	}
	return true
}

// maybeCompactLocked folds the state into a fresh snapshot once the WAL has
// outgrown the configured bound: write snapshot.tmp, sync it, rename it
// over snapshot (the atomic commit point), then truncate the WAL. Two
// crashpoints bracket the commit point. Returns true when an injected
// crash consumed the request (s.mu released). Caller holds s.mu.
func (s *Server) maybeCompactLocked() bool {
	st := s.cfg.Store
	if st == nil || st.Size(walName) <= s.cfg.CompactEvery {
		return false
	}
	st.WriteFile(snapTmpName, encodeSnapshot(s.ds.snapshot(), s.streams))
	st.Sync(snapTmpName)
	if s.crashAtLocked(CrashDuringCompaction) {
		return true
	}
	st.Rename(snapTmpName, snapName)
	if s.crashAtLocked(CrashAfterSnapshotInstall) {
		return true
	}
	st.WriteFile(walName, nil)
	st.Sync(walName)
	s.compactions++
	return false
}

// crashAtLocked fires an injected crash if the supervisor has armed this
// crashpoint for this incarnation. On a kill the incarnation is marked
// dead, its listener closed, the store crashed (tearing un-synced tails),
// s.mu released, and the supervisor told to recover — by the time this
// returns true a replacement server owns the state. Caller holds s.mu.
func (s *Server) crashAtLocked(p Crashpoint) bool {
	if s.cfg.monitor == nil || !s.cfg.monitor.atCrashpoint(s, p) {
		return false
	}
	s.dead = true
	_ = s.listener.Close()
	if s.cfg.Store != nil {
		s.cfg.Store.Crash()
	}
	s.mu.Unlock()
	s.cfg.monitor.serverDied(s)
	return true
}

// recordAckedLocked notes every record in data as acknowledged, firing the
// OnRecord tap for records this incarnation had not acked before. Caller
// holds s.mu.
func (s *Server) recordAckedLocked(id string, data []byte) {
	keys := s.ackedKeys[id]
	if keys == nil {
		keys = make(map[string]bool)
		s.ackedKeys[id] = keys
	}
	var scratch []byte
	for _, rec := range core.ParseRecords(data) {
		scratch = core.AppendRecordLine(scratch[:0], rec)
		if keys[string(scratch)] { // alloc-free lookup; re-sent records are the common case
			continue
		}
		keys[string(scratch)] = true
		if s.cfg.OnRecord != nil {
			s.cfg.OnRecord(id, rec)
		}
	}
}

// AckedKeys returns the serialized form of every record the server has
// ever acknowledged for a device, sorted. The chaos harness checks each
// one appears exactly once in the final merged dataset.
func (s *Server) AckedKeys(id string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.ackedKeys[id]))
	for k := range s.ackedKeys[id] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ackedSnapshot deep-copies the acked-record ledger; the supervisor
// harvests it from a dying incarnation so the ground truth for the
// no-acknowledged-data-loss invariant spans restarts.
func (s *Server) ackedSnapshot() map[string]map[string]bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[string]bool, len(s.ackedKeys))
	for id, keys := range s.ackedKeys {
		cp := make(map[string]bool, len(keys))
		for k := range keys {
			cp[k] = true
		}
		out[id] = cp
	}
	return out
}

func parseHeader(fields []string) (id string, size int, sum uint32, err error) {
	if len(fields) != 4 || fields[0] != "UPLOAD" {
		return "", 0, 0, errors.New("bad header")
	}
	id = fields[1]
	size, err = strconv.Atoi(fields[2])
	if err != nil || size < 0 {
		return "", 0, 0, errors.New("bad size")
	}
	if size > MaxUploadBytes {
		return "", 0, 0, ErrTooLarge
	}
	crc, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil {
		return "", 0, 0, errors.New("bad checksum")
	}
	return id, size, uint32(crc), nil
}

// Upload sends a device's log to the collection server at addr.
func Upload(addr, deviceID string, data []byte) error {
	if len(data) > MaxUploadBytes {
		return ErrTooLarge
	}
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return fmt.Errorf("collect: deadline: %w", err)
	}
	if _, err := fmt.Fprintf(conn, "UPLOAD %s %d %08x\n", deviceID, len(data), crc32.Checksum(data, castagnoli)); err != nil {
		return fmt.Errorf("collect: send header: %w", err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("collect: send body: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("collect: read reply: %w", err)
	}
	reply = strings.TrimSpace(reply)
	if reply != "OK" {
		return fmt.Errorf("collect: server rejected upload: %s", reply)
	}
	return nil
}

// Handoff replicates one device's state (kind HandoffLog or HandoffStream)
// onto the collection server at addr — the server-to-server leg of fleet
// crash handoff and rebalancing. The receiving server WAL-logs and syncs
// the payload before its OK, so a nil return is the same durable promise an
// upload acknowledgement is.
func Handoff(addr, deviceID, kind string, data []byte) error {
	if len(data) > MaxUploadBytes {
		return ErrTooLarge
	}
	if kind != HandoffLog && kind != HandoffStream {
		return fmt.Errorf("collect: invalid handoff kind %q", kind)
	}
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	conn, err := dialCollect(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "HANDOFF %s %s %d %08x\n", deviceID, kind, len(data), crc32.Checksum(data, castagnoli)); err != nil {
		return fmt.Errorf("collect: send header: %w", err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("collect: send body: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("collect: read reply: %w", err)
	}
	if reply = strings.TrimSpace(reply); reply != "OK" {
		return fmt.Errorf("collect: server rejected handoff: %s", reply)
	}
	return nil
}

// PutMerged stores a device's log, preserving records the previous copy
// had but the new one lost — after a master reset the phone re-uploads a
// freshly started log, and the server must not forget the pre-reset study
// data. Merging goes through MergeRecords, the canonical order-independent
// merge, so the stored bytes do not depend on upload scheduling.
func (ds *Dataset) PutMerged(deviceID string, data []byte) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	old, ok := ds.files[deviceID]
	if !ok {
		ds.files[deviceID] = append([]byte(nil), data...)
		return
	}
	ds.files[deviceID] = EncodeRecords(MergeRecords(core.ParseRecords(old), core.ParseRecords(data)))
}

// snapshot copies the per-device logs (compaction input).
func (ds *Dataset) snapshot() map[string][]byte {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make(map[string][]byte, len(ds.files))
	for _, id := range sortedKeys(ds.files) {
		out[id] = append([]byte(nil), ds.files[id]...)
	}
	return out
}

// resetTo replaces the dataset's content wholesale with recovered state (a
// durable server restarting on its store owns the dataset outright).
func (ds *Dataset) resetTo(files map[string][]byte) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.files = make(map[string][]byte, len(files))
	for _, id := range sortedKeys(files) {
		ds.files[id] = append([]byte(nil), files[id]...)
	}
}

// Ping probes the collection server at addr — the heartbeat leg of the
// fleet's failure detector. It deliberately uses short timeouts: a beat
// exists to fail fast, and a slow answer is as suspicious as none.
func Ping(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(2 * time.Second)); err != nil {
		return fmt.Errorf("collect: deadline: %w", err)
	}
	if _, err := fmt.Fprint(conn, "PING\n"); err != nil {
		return fmt.Errorf("collect: send header: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("collect: read reply: %w", err)
	}
	if strings.TrimSpace(reply) != "OK" {
		return fmt.Errorf("collect: server rejected ping: %s", strings.TrimSpace(reply))
	}
	return nil
}

// Query asks the collection server at addr a read-only question and returns
// the single-line answer (compact JSON by convention). The whole exchange is
// one header line each way: "QUERY <name> [args...]" out, "OK <answer>" back.
// Queries are served from the live analysis tier, not the durable dataset,
// and never mutate server state.
func Query(addr, name string, args ...string) (string, error) {
	if strings.ContainsAny(name, " \n\t") || name == "" {
		return "", fmt.Errorf("collect: invalid query name %q", name)
	}
	parts := append([]string{"QUERY", name}, args...)
	for _, a := range args {
		if strings.ContainsAny(a, " \n\t") || a == "" {
			return "", fmt.Errorf("collect: invalid query argument %q", a)
		}
	}
	header := strings.Join(parts, " ")
	if len(header)+1 > MaxHeaderBytes {
		return "", errors.New("collect: query too long")
	}
	conn, err := dialCollect(addr)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "%s\n", header); err != nil {
		return "", fmt.Errorf("collect: send header: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return "", fmt.Errorf("collect: read reply: %w", err)
	}
	reply = strings.TrimSpace(reply)
	switch {
	case reply == "OK":
		return "", nil
	case strings.HasPrefix(reply, "OK "):
		return reply[len("OK "):], nil
	default:
		return "", fmt.Errorf("collect: server rejected query: %s", reply)
	}
}

// Fin tells the collection server a device's chunk stream is done (the
// server may drop it). Best-effort bookkeeping: the study data itself has
// already been merged and acknowledged.
func Fin(addr, deviceID string) error {
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	conn, err := dialCollect(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "FIN %s\n", deviceID); err != nil {
		return fmt.Errorf("collect: send header: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("collect: read reply: %w", err)
	}
	if strings.TrimSpace(reply) != "OK" {
		return fmt.Errorf("collect: server rejected fin: %s", strings.TrimSpace(reply))
	}
	return nil
}
