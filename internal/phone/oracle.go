package phone

import (
	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// TruthKind labels ground-truth events recorded by the simulator oracle.
type TruthKind string

// Ground-truth event kinds.
const (
	TruthBoot         TruthKind = "boot"
	TruthFreeze       TruthKind = "freeze"
	TruthSelfShutdown TruthKind = "self-shutdown"
	TruthUserShutdown TruthKind = "user-shutdown"
	TruthLowBattery   TruthKind = "low-battery"
	TruthLoggerOff    TruthKind = "logger-off"
	TruthBatteryPull  TruthKind = "battery-pull"
	// TruthOutputFailure is a value failure (wrong output delivered in
	// response to an input): the failure class the paper's logger cannot
	// detect automatically and defers to future work (section 7).
	TruthOutputFailure TruthKind = "output-failure"
	// TruthServiceVisit is a trip to the service centre: a master reset
	// wipes the flash (including the logger's files) and a firmware
	// update reduces subsequent failure rates (section 4, "service the
	// phone").
	TruthServiceVisit TruthKind = "service-visit"
)

// TruthEvent is one ground-truth record.
type TruthEvent struct {
	Kind     TruthKind
	Time     sim.Time
	Cause    string   // e.g. "panic KERN-EXEC 3" or "spontaneous"
	Activity Activity // user activity when the event happened
}

// TruthPanic is a panic with the simulator's ground-truth context attached.
type TruthPanic struct {
	Panic    symbos.Panic
	Activity Activity
	Apps     []string // user-visible applications running at panic time
	Burst    bool     // part of a propagation cascade (not the primary)
}

// Oracle records what actually happened on a device, independent of the
// logger. The paper had no oracle — the logger was all they had — but the
// simulation keeps one so that tests can measure the logger's detection
// accuracy and the analysis pipeline can be validated against truth.
type Oracle struct {
	Events []TruthEvent
	Panics []TruthPanic

	// ObservedHours accumulates powered-on time (the denominator of the
	// MTBF estimates).
	ObservedHours float64
}

func (o *Oracle) record(kind TruthKind, at sim.Time, cause string, act Activity) {
	o.Events = append(o.Events, TruthEvent{Kind: kind, Time: at, Cause: cause, Activity: act})
}

// Count returns the number of ground-truth events of a kind.
func (o *Oracle) Count(kind TruthKind) int {
	n := 0
	for _, e := range o.Events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// PanicCount returns the number of ground-truth panics.
func (o *Oracle) PanicCount() int { return len(o.Panics) }

// Failures returns the ground-truth freezes plus self-shutdowns — the
// user-perceived failures whose MTBF the paper reports.
func (o *Oracle) Failures() int {
	return o.Count(TruthFreeze) + o.Count(TruthSelfShutdown)
}
