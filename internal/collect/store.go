package collect

import (
	"sort"
	"sync"

	"symfail/internal/sim"
)

// CrashStore is the crash-faithful medium backing the collection server's
// durable state (its write-ahead log and snapshot). It mirrors the phone's
// flash model (phone.FS with FlashFaults): bytes written are divided into a
// synced region that survives a crash and an un-synced tail that does not —
// a kill keeps only a strict prefix of the tail (the torn write), drawn
// from the supervisor's RNG so every loss is a deterministic function of
// the seed. Nothing here touches the real filesystem; the point is to make
// the durability protocol (WAL append + Sync before the ACK hits the wire)
// falsifiable under injected crashes, exactly like the phone's log.
//
// Metadata operations — Rename, Remove — are modelled as atomic and
// immediately durable, the standard guarantee of a journalled filesystem;
// the snapshot installation relies on Rename being the atomic commit point.
// A staged replacement (WriteFile before Sync) is all-or-nothing: a crash
// before the Sync reverts the file to its previous synced content.
//
// CrashStore is safe for concurrent use, but the server serialises every
// access under its own mutex anyway (lock order: Server.mu, then Dataset.mu
// or CrashStore.mu — never the reverse).
type CrashStore struct {
	mu    sync.Mutex
	files map[string]*storeFile
	rng   *sim.Rand

	appends uint64
	syncs   uint64
	crashes uint64
}

// storeFile is one named file on the crash-faithful medium.
type storeFile struct {
	// synced survives a crash verbatim.
	synced []byte
	// tail has been written but not synced; a crash keeps a strict prefix.
	tail []byte
	// repl is a staged full replacement (WriteFile before Sync); a crash
	// drops it entirely and the file reverts to synced.
	repl    []byte
	hasRepl bool
}

// NewCrashStore returns an empty medium. rng draws the torn-tail lengths on
// Crash; nil means a crash loses the whole un-synced tail.
func NewCrashStore(rng *sim.Rand) *CrashStore {
	return &CrashStore{files: make(map[string]*storeFile), rng: rng}
}

func (s *CrashStore) file(name string) *storeFile {
	f := s.files[name]
	if f == nil {
		f = &storeFile{}
		s.files[name] = f
	}
	return f
}

// Append adds p to the file's un-synced tail (creating the file if needed).
// The bytes are readable immediately but survive a crash only after Sync.
func (s *CrashStore) Append(name string, p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(name)
	if f.hasRepl {
		f.repl = append(f.repl, p...)
	} else {
		f.tail = append(f.tail, p...)
	}
	s.appends++
}

// WriteFile stages a full replacement of the file's content. Until Sync the
// replacement is volatile: a crash reverts to the previous synced content.
func (s *CrashStore) WriteFile(name string, p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.file(name)
	f.repl = append([]byte(nil), p...)
	f.hasRepl = true
	s.appends++
}

// Sync makes the file's current content durable (the sync barrier: fsync).
func (s *CrashStore) Sync(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return
	}
	if f.hasRepl {
		f.synced = f.repl
		f.repl, f.hasRepl = nil, false
	} else {
		f.synced = append(f.synced, f.tail...)
	}
	f.tail = nil
	s.syncs++
}

// Read returns a copy of the file's current logical content (synced bytes
// plus any un-synced tail or staged replacement). A missing file reads as
// nil.
func (s *CrashStore) Read(name string) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return nil
	}
	return append([]byte(nil), f.logical()...)
}

func (f *storeFile) logical() []byte {
	if f.hasRepl {
		return f.repl
	}
	if len(f.tail) == 0 {
		return f.synced
	}
	return append(f.synced[:len(f.synced):len(f.synced)], f.tail...)
}

// Size returns the file's current logical length.
func (s *CrashStore) Size(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[name]
	if !ok {
		return 0
	}
	return len(f.logical())
}

// Rename atomically renames a file, replacing any existing target — the
// commit point for snapshot installation. Like rename(2) on a journalled
// filesystem it is modelled as durable metadata: a crash after Rename sees
// the new name.
func (s *CrashStore) Rename(oldName, newName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, ok := s.files[oldName]
	if !ok {
		return
	}
	delete(s.files, oldName)
	s.files[newName] = f
}

// Remove deletes a file (durable metadata, like Rename).
func (s *CrashStore) Remove(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.files, name)
}

// Crash models the process dying: every staged replacement is dropped and
// every un-synced tail is torn to a strict prefix whose length is drawn
// from the store's RNG (nil RNG loses the whole tail), in sorted file-name
// order so the draw sequence is deterministic. Mirrors phone.FS.Crash.
func (s *CrashStore) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.crashes++
	names := make([]string, 0, len(s.files))
	for name := range s.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := s.files[name]
		if f.hasRepl {
			f.repl, f.hasRepl = nil, false
			f.tail = nil
			continue
		}
		if len(f.tail) == 0 {
			continue
		}
		keep := 0
		if s.rng != nil {
			keep = s.rng.Intn(len(f.tail))
		}
		f.synced = append(f.synced, f.tail[:keep]...)
		f.tail = nil
	}
}

// Names returns the files currently present, sorted.
func (s *CrashStore) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.files))
	for name := range s.files {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Appends returns how many write operations (Append or WriteFile) were
// issued; Syncs how many sync barriers; Crashes how many crashes were
// injected.
func (s *CrashStore) Appends() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.appends }

// Syncs returns the number of sync barriers issued.
func (s *CrashStore) Syncs() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.syncs }

// Crashes returns the number of crashes the medium survived.
func (s *CrashStore) Crashes() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.crashes }
