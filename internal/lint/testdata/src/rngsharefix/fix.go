// Package rngsharefix is a symlint golden-test fixture for the rngshare
// analyzer: a *sim.Rand crossing a goroutine boundary without Split().
package rngsharefix

import "symfail/internal/sim"

type worker struct {
	rng *sim.Rand
	out chan float64
}

func consume(r *sim.Rand, out chan<- float64) {
	out <- r.Float64()
}

// Positive: the parent stream is captured by the goroutine closure.
func capturedParent(out chan float64) {
	r := sim.NewRand(1)
	go func() {
		out <- r.Float64() // want: captured without Split
	}()
	_ = r.Uint64()
}

// Positive: the parent stream is passed as a goroutine argument.
func passedParent(out chan float64) {
	r := sim.NewRand(2)
	go consume(r, out) // want: passed without Split
	_ = r.Uint64()
}

// Positive: the parent stream rides into the goroutine inside a struct.
func structSmuggled(out chan float64) {
	r := sim.NewRand(3)
	go func(w worker) {
		w.out <- w.rng.Float64()
	}(worker{rng: r, out: out}) // want: passed without Split
	_ = r.Uint64()
}

// Negative: a child derived via Split before the go statement.
func splitChildVar(out chan float64) {
	r := sim.NewRand(4)
	child := r.Split()
	go func() {
		out <- child.Float64()
	}()
	_ = r.Uint64()
}

// Negative: Split called directly in the argument list.
func splitChildArg(out chan float64) {
	r := sim.NewRand(5)
	go consume(r.Split(), out)
	_ = r.Uint64()
}

// Negative: a generator created inside the goroutine is private to it.
func privateRand(out chan float64) {
	go func() {
		r := sim.NewRand(6)
		out <- r.Float64()
	}()
}
