package collect

import (
	"encoding/json"
	"fmt"
	"sort"

	"symfail/internal/core"
)

// Write-ahead logging for the collection server. The server's durable state
// lives in two files on a CrashStore:
//
//	wal       — one checksummed frame (core.EncodeFrame) per accepted verb
//	snapshot  — the compacted state: per-device merged log + chunk stream
//
// Every state-changing verb (UPLOAD, CHUNK, FIN) is appended to the WAL and
// synced *before* the acknowledgement is written to the wire, so an ACK is
// a durable promise: any record the client was told about is recoverable
// from the synced WAL prefix whatever the server does next. A crash tears
// the un-synced WAL tail (CrashStore semantics), which is exactly the
// damage core.RecoverLog was built to survive — torn and corrupt frames are
// dropped, intact ones replayed.
//
// Compaction folds the current state into snapshot.tmp, syncs it, renames
// it over snapshot (the atomic commit point), then truncates the WAL. A
// crash anywhere in that sequence leaves either the old snapshot + full WAL
// or the new snapshot + not-yet-truncated WAL; replaying a WAL against a
// snapshot that already contains its effects is a no-op because chunk
// replay is positional and the dataset merge is idempotent.
//
// Recovery is canonical and idempotent, like log recovery on the phone:
// recovering an already-recovered store changes nothing, byte for byte.

// Durable file names on the server's CrashStore.
const (
	walName     = "wal"
	snapName    = "snapshot"
	snapTmpName = "snapshot.tmp"
)

// WAL operations. opChunk and opUpload carry payload bytes; opFin retires a
// device's chunk stream; opHandoff and opHandoffStream carry state
// replicated from a peer server (fleet crash handoff and rebalancing).
const (
	opChunk         = "chunk"
	opUpload        = "upload"
	opFin           = "fin"
	opHandoff       = "handoff"
	opHandoffStream = "handoffstream"
)

// walEntry is one logged verb. Data round-trips through JSON (base64), the
// same serialisation discipline as the records themselves.
type walEntry struct {
	Op   string `json:"op"`
	Dev  string `json:"dev"`
	Off  int    `json:"off,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// snapEntry is one device's piece of a snapshot: its merged dataset log
// (kind "log") or its live chunk stream (kind "stream"). Presence of the
// frame carries presence of the key, so empty entries survive compaction.
type snapEntry struct {
	Dev  string `json:"dev"`
	Kind string `json:"kind"`
	Data []byte `json:"data,omitempty"`
}

func encodeWALEntry(e walEntry) []byte {
	payload, err := json.Marshal(e)
	if err != nil {
		// walEntry has only marshalable fields; unreachable.
		panic(fmt.Sprintf("collect: marshal wal entry: %v", err))
	}
	return core.EncodeFrame(payload)
}

// encodeSnapshot serialises the server state as framed snapEntries in
// sorted device order (logs first, then streams), so a snapshot of a given
// state is always the same bytes.
func encodeSnapshot(files, streams map[string][]byte) []byte {
	var out []byte
	for _, dev := range sortedKeys(files) {
		out = append(out, encodeSnapEntry(snapEntry{Dev: dev, Kind: "log", Data: files[dev]})...)
	}
	for _, dev := range sortedKeys(streams) {
		out = append(out, encodeSnapEntry(snapEntry{Dev: dev, Kind: "stream", Data: streams[dev]})...)
	}
	return out
}

func encodeSnapEntry(e snapEntry) []byte {
	payload, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("collect: marshal snapshot entry: %v", err))
	}
	return core.EncodeFrame(payload)
}

func sortedKeys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// mergeLogs mirrors Dataset.PutMerged on plain bytes: the first write for a
// device keeps its raw form, later writes go through the canonical
// order-independent merge.
func mergeLogs(old, add []byte) []byte {
	if old == nil {
		return append([]byte(nil), add...)
	}
	return EncodeRecords(MergeRecords(core.ParseRecords(old), core.ParseRecords(add)))
}

// recoverServerState rebuilds the server's in-memory state from the store:
// snapshot first, then the WAL replayed entry by entry. Replay mirrors the
// online handlers exactly — after every chunk entry the device's stream is
// merged into its log, just as handleChunk merges before acknowledging — so
// a stream later rewound by a master reset cannot take already-acknowledged
// records with it.
//
// Recovery also normalises the medium, making itself idempotent: a WAL or
// snapshot with a torn tail is rewritten to its clean prefix and synced,
// and a stale snapshot.tmp (a compaction that crashed before its Rename
// commit point) is removed. Recovering the recovered store is byte-for-byte
// the same state and leaves the store untouched.
func recoverServerState(store *CrashStore) (files, streams map[string][]byte) {
	files = make(map[string][]byte)
	streams = make(map[string][]byte)

	snapRec := core.RecoverLog(store.Read(snapName))
	for _, payload := range snapRec.Payloads {
		var e snapEntry
		if json.Unmarshal(payload, &e) != nil || e.Dev == "" {
			continue // a frame that verifies but does not parse is skipped, never fatal
		}
		switch e.Kind {
		case "log":
			files[e.Dev] = append([]byte(nil), e.Data...)
		case "stream":
			streams[e.Dev] = append([]byte(nil), e.Data...)
		}
	}

	walRec := core.RecoverLog(store.Read(walName))
	for _, payload := range walRec.Payloads {
		var e walEntry
		if json.Unmarshal(payload, &e) != nil || e.Dev == "" {
			continue
		}
		switch e.Op {
		case opChunk:
			st := streams[e.Dev]
			if e.Off > len(st) {
				continue // unreachable: only accepted (gap-free) chunks are logged
			}
			st = append(st[:e.Off:e.Off], e.Data...)
			streams[e.Dev] = st
			files[e.Dev] = mergeLogs(files[e.Dev], st)
		case opUpload:
			files[e.Dev] = mergeLogs(files[e.Dev], e.Data)
		case opFin:
			delete(streams, e.Dev)
		case opHandoff:
			files[e.Dev] = mergeLogs(files[e.Dev], e.Data)
		case opHandoffStream:
			// Mirrors handleHandoff: the entry was only logged when the live
			// stream was empty at commit time, and replay reconstructs the
			// same state, so the guard re-evaluates identically.
			if len(streams[e.Dev]) == 0 {
				streams[e.Dev] = append([]byte(nil), e.Data...)
			}
			files[e.Dev] = mergeLogs(files[e.Dev], e.Data)
		}
	}

	if walRec.Dirty {
		store.WriteFile(walName, walRec.Clean)
		store.Sync(walName)
	}
	if snapRec.Dirty {
		store.WriteFile(snapName, snapRec.Clean)
		store.Sync(snapName)
	}
	store.Remove(snapTmpName)
	return files, streams
}

// RecoverState rebuilds (and normalises) a server's durable state from its
// store without starting a server: per-device merged logs and live chunk
// streams. The fleet supervisor reads a dying shard's acked state this way
// to hand it off to surviving peers. Like server construction, recovery is
// idempotent — recovering an already-recovered store returns the same maps
// byte for byte and writes nothing.
func RecoverState(store *CrashStore) (files, streams map[string][]byte) {
	return recoverServerState(store)
}
