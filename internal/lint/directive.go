package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Allow is one parsed //symlint:allow directive.
type Allow struct {
	Rule   string // analyzer name the suppression applies to
	Reason string // mandatory human justification
}

const directivePrefix = "//symlint:"

// ParseAllow parses a single comment text. It returns ok=false when the
// comment is not a symlint directive at all, and a non-nil error when it is
// one but is malformed (unknown verb, missing rule, missing reason, or a
// conventional machine-directive formatting violation).
func ParseAllow(comment string) (Allow, bool, error) {
	// Machine directives are conventionally written with no space after
	// "//" (like //go:generate). Catch the near-miss explicitly so a typo
	// does not silently disable the suppression.
	trimmed := strings.TrimSpace(strings.TrimPrefix(comment, "//"))
	if !strings.HasPrefix(comment, directivePrefix) {
		if strings.HasPrefix(trimmed, "symlint:") && !strings.HasPrefix(comment, "/*") {
			return Allow{}, false, fmt.Errorf("symlint directive must start exactly with %q (no spaces)", directivePrefix)
		}
		return Allow{}, false, nil
	}
	rest := strings.TrimPrefix(comment, directivePrefix)
	verb := rest
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		verb, rest = rest[:i], strings.TrimLeft(rest[i:], " \t")
	} else {
		rest = ""
	}
	if verb != "allow" {
		return Allow{}, false, fmt.Errorf("unknown symlint directive %q (only \"allow\" is supported)", verb)
	}
	rule := rest
	reason := ""
	if i := strings.IndexAny(rest, " \t"); i >= 0 {
		rule, reason = rest[:i], strings.TrimSpace(rest[i:])
	}
	if rule == "" {
		return Allow{}, false, fmt.Errorf("symlint:allow needs an analyzer name: //symlint:allow <analyzer> <reason>")
	}
	if !validRuleName(rule) {
		return Allow{}, false, fmt.Errorf("invalid analyzer name %q in symlint:allow (letters, digits, '-' and '_' only)", rule)
	}
	if reason == "" {
		return Allow{}, false, fmt.Errorf("symlint:allow %s needs a reason: //symlint:allow %s <why this is safe>", rule, rule)
	}
	return Allow{Rule: rule, Reason: reason}, true, nil
}

func validRuleName(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return s != ""
}

// placedAllow is an Allow anchored at a source line.
type placedAllow struct {
	allow Allow
	pos   token.Position
	used  bool
}

// directiveIndex holds every allow directive in a package set, keyed by
// file and line for suppression lookup.
type directiveIndex struct {
	byLine    map[string]map[int]*placedAllow // filename -> line -> directive
	all       []*placedAllow                  // in discovery order
	malformed []Diagnostic
}

func newDirectiveIndex(pkgs []*Package) *directiveIndex {
	idx := &directiveIndex{byLine: make(map[string]map[int]*placedAllow)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx.addComment(pkg, c)
				}
			}
		}
	}
	return idx
}

func (idx *directiveIndex) addComment(pkg *Package, c *ast.Comment) {
	allow, ok, err := ParseAllow(c.Text)
	pos := pkg.fset.Position(c.Pos())
	if err != nil {
		idx.malformed = append(idx.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "directive",
			Message:  err.Error(),
		})
		return
	}
	if !ok {
		return
	}
	pa := &placedAllow{allow: allow, pos: pos}
	if idx.byLine[pos.Filename] == nil {
		idx.byLine[pos.Filename] = make(map[int]*placedAllow)
	}
	idx.byLine[pos.Filename][pos.Line] = pa
	idx.all = append(idx.all, pa)
}

// suppress reports whether d is covered by an allow on the same line or the
// line directly above, and marks that allow used.
func (idx *directiveIndex) suppress(d Diagnostic) bool {
	lines := idx.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if pa := lines[line]; pa != nil && pa.allow.Rule == d.Analyzer {
			pa.used = true
			return true
		}
	}
	return false
}

// unused reports every allow directive that suppressed nothing, restricted
// to analyzers that actually ran (an allow for an analyzer outside this run
// cannot be judged). A stale allow is a lie about the code and must go.
func (idx *directiveIndex) unused(active map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, pa := range idx.all {
		if pa.used || !active[pa.allow.Rule] {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      pa.pos,
			Analyzer: "directive",
			Message:  fmt.Sprintf("unused symlint:allow %s (nothing to suppress here; delete it)", pa.allow.Rule),
		})
	}
	return out
}
