package sim

import "runtime"

// RunShards runs fn(shard) for every shard in [0, n) on a bounded pool of
// worker goroutines and waits for all of them. It is the execution primitive
// behind sharded fleet simulation: every shard must own its world — engine,
// devices, RNG streams — outright, so that the only thing parallelism can
// change is wall-clock time.
//
// workers bounds the pool: 0 (or negative) means GOMAXPROCS, 1 degenerates
// to a plain serial loop in shard order (no goroutines at all, the exact
// pre-sharding execution), and anything larger is clamped to n. Shard
// functions must not assume anything about the order or concurrency of
// other shards.
//
// Error handling is deterministic regardless of scheduling: every shard
// always runs (one failing shard does not cancel its siblings — shards are
// independent experiments and a partial fleet is still a dataset), and the
// returned error is the lowest-indexed shard's, not the first to lose a
// race.
func RunShards(n, workers int, fn func(shard int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	shards := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range shards {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		shards <- i
	}
	close(shards)
	for w := 0; w < workers; w++ {
		<-done
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
