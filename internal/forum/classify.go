package forum

import "strings"

// Classification is the label set the pipeline extracts from one post.
type Classification struct {
	IsFailure bool
	Type      FailureType
	Recovery  Recovery
	Severity  Severity
	Activity  ActivityTag
}

// Classify labels one post with keyword rules, the way a human coder (or
// the paper's filtering pass) reads free-format forum text. It never looks
// at the post's hidden ground-truth fields.
func Classify(p Post) Classification {
	text := strings.ToLower(p.Text)
	ft, ok := classifyType(text)
	if !ok {
		return Classification{}
	}
	rec := classifyRecovery(text)
	return Classification{
		IsFailure: true,
		Type:      ft,
		Recovery:  rec,
		Severity:  SeverityOf(rec),
		Activity:  classifyActivity(text),
	}
}

// Keyword tables. Order matters: the first matching type wins, and the
// sets are built to be disjoint over colloquial phrasing (e.g. "power
// cycling" is erratic behaviour, "power cycle the phone" is a reboot
// recovery).
var typeKeywords = []struct {
	ft   FailureType
	keys []string
}{
	{Unstable, []string{
		"erratic", "by themselves", "flaky", "wallpaper disappearing",
		"backlight flashing", "power cycling",
	}},
	{Freeze, []string{
		"freez", "frozen", "locks up", "lock up", "screen stuck", "hangs",
		"unresponsive", "won't respond",
	}},
	{SelfShutdown, []string{
		"shuts down by itself", "turns itself off", "powers off on its own",
		"random power-off", "screen goes black and it is off",
	}},
	{OutputFail, []string{
		"charge indicator", "volume is different", "wrong time",
		"output is wrong", "reminders go off",
	}},
	{InputFail, []string{
		"soft keys", "keypad presses", "no effect", "inputs are ignored",
		"buttons does nothing",
	}},
}

func classifyType(text string) (FailureType, bool) {
	for _, tk := range typeKeywords {
		for _, k := range tk.keys {
			if strings.Contains(text, k) {
				return tk.ft, true
			}
		}
	}
	return "", false
}

var recoveryKeywords = []struct {
	rec  Recovery
	keys []string
}{
	{RecService, []string{
		"service center", "master reset", "flash new firmware",
		"for service", "replaced the handset",
	}},
	{RecBattery, []string{
		"pulling the battery", "battery out", "battery removal",
	}},
	{RecReboot, []string{
		"a reboot fixes", "power cycle the phone", "turning it off and on",
	}},
	{RecWait, []string{
		"after waiting", "i just wait",
	}},
	{RecRepeat, []string{
		"repeat the action", "doing it again",
	}},
}

func classifyRecovery(text string) Recovery {
	for _, rk := range recoveryKeywords {
		for _, k := range rk.keys {
			if strings.Contains(text, k) {
				return rk.rec
			}
		}
	}
	return RecUnreported
}

var activityKeywords = []struct {
	tag  ActivityTag
	keys []string
}{
	{ActCall, []string{"voice call", "middle of a call"}},
	{ActText, []string{"text message", "sms"}},
	{ActBluetooth, []string{"bluetooth"}},
	{ActImages, []string{"manipulating images", "browsing my pictures"}},
}

func classifyActivity(text string) ActivityTag {
	for _, ak := range activityKeywords {
		for _, k := range ak.keys {
			if strings.Contains(text, k) {
				return ak.tag
			}
		}
	}
	return ActNone
}
