package analysis

import (
	"math"
	"testing"
)

func TestMetricSampleStats(t *testing.T) {
	m := MetricSample{Name: "x", Values: []float64{1, 2, 3, 4, 5}}
	if m.Mean() != 3 {
		t.Errorf("mean = %v", m.Mean())
	}
	wantSD := math.Sqrt(2.5)
	if math.Abs(m.StdDev()-wantSD) > 1e-12 {
		t.Errorf("stddev = %v, want %v", m.StdDev(), wantSD)
	}
	lo, hi := m.CI95()
	if lo >= 3 || hi <= 3 || hi-lo <= 0 {
		t.Errorf("CI95 = [%v, %v]", lo, hi)
	}
	if m.Quantile(0.5) != 3 {
		t.Errorf("median = %v", m.Quantile(0.5))
	}
	if m.Quantile(1) != 5 || m.Quantile(0) != 1 {
		t.Errorf("extremes = %v/%v", m.Quantile(0), m.Quantile(1))
	}
}

func TestMetricSampleDegenerate(t *testing.T) {
	var empty MetricSample
	if empty.Mean() != 0 || empty.StdDev() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty sample stats nonzero")
	}
	lo, hi := empty.CI95()
	if lo != 0 || hi != 0 {
		t.Error("empty CI nonzero")
	}
	one := MetricSample{Values: []float64{7}}
	if one.StdDev() != 0 {
		t.Error("single-sample stddev nonzero")
	}
}

func TestHeadlineMetricsFromSyntheticStudy(t *testing.T) {
	s := newSyntheticStudy(t)
	m := HeadlineMetrics(s)
	if m["freezes"] != 1 || m["self_shutdowns"] != 1 {
		t.Errorf("counts = %v", m)
	}
	if m["panics"] != 3 {
		t.Errorf("panics = %v", m["panics"])
	}
	if m["mtbfr_hours"] <= 0 || m["observed_hours"] <= 0 {
		t.Errorf("hours = %v", m)
	}
	if m["kernexec3_pct"] != 0 {
		// KERN-EXEC 3 is not the top key in the synthetic study only if
		// tied; with one of each it is sorted by count then key, so
		// EIKON... Actually verify presence semantics: top row must be
		// KERN-EXEC 3 for the metric to be set.
		t.Logf("kernexec3_pct = %v (top row %v)", m["kernexec3_pct"], s.PanicTable()[0].Key)
	}
	// Every declared metric name that is present must be finite.
	for _, name := range MetricNames {
		if v, ok := m[name]; ok && (math.IsNaN(v) || math.IsInf(v, 0)) {
			t.Errorf("%s = %v", name, v)
		}
	}
}

func TestAggregate(t *testing.T) {
	runs := []map[string]float64{
		{"a": 1, "b": 10},
		{"a": 3, "b": 30},
	}
	agg := Aggregate(runs)
	if agg["a"].Mean() != 2 || agg["b"].Mean() != 20 {
		t.Errorf("agg = %+v", agg)
	}
	if len(agg["a"].Values) != 2 {
		t.Errorf("values = %v", agg["a"].Values)
	}
	if agg["a"].Name != "a" {
		t.Errorf("name = %q", agg["a"].Name)
	}
}
