// Package clock is the nondeterminism sink of the transitive-determinism
// fixture: unrestricted code that reads the wall clock.
package clock

import "time"

// Wall reads the wall clock; any restricted code reaching it leaks.
func Wall() int64 { return time.Now().UnixNano() }

// WallTicker implements the engine's Ticker interface with wall time.
type WallTicker struct{}

func (WallTicker) Tick() int64 { return Wall() }
