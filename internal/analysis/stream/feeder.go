package stream

import (
	"sort"

	"symfail/internal/core"
)

// Feeder adapts a per-device record stream (collect.Dataset.Stream,
// collect.StreamDir) to an accumulator's AddDevice/Observe, buffering one
// device's records and stable-sorting them by timestamp before observing —
// the cursor input contract, and exactly the per-device ordering analysis.New
// applies — with O(one device's records) memory. Pass Begin and Record as
// the stream callbacks and call Flush once after the stream ends.
type Feeder struct {
	// AddDevice registers a device before its records are observed (may be
	// nil for accumulators without zero-record device tracking).
	AddDevice func(deviceID string)
	// Observe folds one record into the accumulator.
	Observe func(deviceID string, r core.Record)

	cur string
	buf []core.Record
}

// Begin flushes the previous device and registers the next one.
func (f *Feeder) Begin(id string) error {
	f.Flush()
	if f.AddDevice != nil {
		f.AddDevice(id)
	}
	f.cur = id
	return nil
}

// Record buffers one record of the current device.
func (f *Feeder) Record(_ string, r core.Record) error {
	f.buf = append(f.buf, r)
	return nil
}

// Flush sorts and observes the buffered device's records. Idempotent; must
// be called once after the last record so the final device is observed.
func (f *Feeder) Flush() {
	sort.SliceStable(f.buf, func(i, j int) bool { return f.buf[i].Time < f.buf[j].Time })
	for _, r := range f.buf {
		f.Observe(f.cur, r)
	}
	f.buf = f.buf[:0]
}
