package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"symfail/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files")

// sharedLoader amortizes stdlib source-import work across the golden tests.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	root, err := lint.FindModRoot(".")
	if err != nil {
		return nil, err
	}
	return lint.NewLoader(root)
})

func loadFixture(t *testing.T, name string) []*lint.Package {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: got %d packages, want 1", name, len(pkgs))
	}
	return pkgs
}

// checkGolden runs the analyzers over one fixture package and compares the
// rendered diagnostics, with module-relative paths, against the golden file.
func checkGolden(t *testing.T, fixture string, analyzers ...*lint.Analyzer) {
	t.Helper()
	checkGoldenPkgs(t, fixture, loadFixture(t, fixture), analyzers...)
}

// checkGoldenPkgs is checkGolden over an explicit package set, for fixtures
// spanning multiple packages (the transitive-determinism tree).
func checkGoldenPkgs(t *testing.T, golden string, pkgs []*lint.Package, analyzers ...*lint.Analyzer) {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, analyzers)
	var b strings.Builder
	for _, d := range diags {
		rel, err := filepath.Rel(l.ModRoot, d.Pos.Filename)
		if err != nil {
			t.Fatal(err)
		}
		d.Pos.Filename = filepath.ToSlash(rel)
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	got := b.String()
	goldenPath := filepath.Join("testdata", golden+".golden")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden %s updated (%d diagnostics)", goldenPath, len(diags))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./internal/lint -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostics drifted from %s.\n got:\n%s\nwant:\n%s", goldenPath, got, want)
	}
	// Every positive fixture line is marked "// want:"; the golden file must
	// reference each of those lines, or a fixture case silently stopped
	// firing without the golden noticing an edit.
	for _, pkg := range pkgs {
		assertWantLinesCovered(t, pkg.Dir, l.ModRoot, got)
	}
}

// assertWantLinesCovered cross-checks the "// want:" markers in fixture
// sources against the golden diagnostics, so the two cannot drift apart.
func assertWantLinesCovered(t *testing.T, fixtureDir, modRoot, golden string) {
	t.Helper()
	reported := make(map[string]bool)
	for _, line := range strings.Split(golden, "\n") {
		if i := strings.Index(line, ": "); i > 0 {
			reported[line[:i]] = true
		}
	}
	entries, err := os.ReadDir(fixtureDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(fixtureDir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, _ := filepath.Rel(modRoot, path)
		rel = filepath.ToSlash(rel)
		for i, src := range strings.Split(string(data), "\n") {
			if !strings.Contains(src, "// want:") {
				continue
			}
			key := rel + ":" + itoa(i+1)
			if !reported[key] {
				t.Errorf("fixture marks %s with `// want:` but the golden has no diagnostic there", key)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}

func TestDeterminismGolden(t *testing.T) {
	checkGolden(t, "determinismfix", lint.NewDeterminism(lint.DeterminismConfig{}))
}

func TestMapOrderGolden(t *testing.T) {
	checkGolden(t, "maporderfix", lint.NewMapOrder())
}

func TestPanicTaxonomyGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/panicfix"
	checkGolden(t, "panicfix", lint.NewPanicTaxonomy(lint.TaxonomyConfig{
		SourcePrefixes: []string{fixturePath},
		TablePkg:       fixturePath,
		TableVar:       "KnownPanicKeys",
	}))
}

func TestAccMergeGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/accmergefix"
	checkGolden(t, "accmergefix", lint.NewAccMerge(lint.AccMergeConfig{
		StreamPkg:  fixturePath,
		IfaceName:  "Accumulator",
		TableVar:   "RegisteredAccumulators",
		RecordPkg:  fixturePath,
		RecordName: "Record",
	}))
}

func TestRNGShareGolden(t *testing.T) {
	checkGolden(t, "rngsharefix", lint.NewRNGShare(lint.RNGConfig{}))
}

func TestEngineShareGolden(t *testing.T) {
	checkGolden(t, "enginesharefix", lint.NewEngineShare(lint.EngineConfig{}))
}

func TestDirectiveGolden(t *testing.T) {
	checkGolden(t, "directivefix", lint.NewDeterminism(lint.DeterminismConfig{}))
}

func TestAckOrderGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/ackorderfix"
	checkGolden(t, "ackorderfix", lint.NewAckOrder(lint.AckOrderConfig{
		PkgPrefixes: []string{fixturePath},
		StoreTypes:  []lint.TypeRef{{Pkg: fixturePath, Name: "WAL"}},
	}))
}

// TestHandoffAckOrderGolden runs ackorder over the fleet-handoff fixture:
// a peer accepting custody of another shard's acknowledged records must
// make them durable before its OK reaches the donor, in loops and through
// the boolean-correlated commit idiom alike.
func TestHandoffAckOrderGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/handofffix"
	checkGolden(t, "handofffix", lint.NewAckOrder(lint.AckOrderConfig{
		PkgPrefixes: []string{fixturePath},
		StoreTypes:  []lint.TypeRef{{Pkg: fixturePath, Name: "WAL"}},
	}))
}

// TestQuorumAckOrderGolden runs ackorder over the write-time quorum
// fixture: the primary's OK must follow its own WAL append+sync even when
// the quorum forward succeeded (replica copies are not this shard's
// durability), while the retryable "ERR quorum ..." refusal is not an
// acknowledgement and constrains nothing.
func TestQuorumAckOrderGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/quorumfix"
	checkGolden(t, "quorumfix", lint.NewAckOrder(lint.AckOrderConfig{
		PkgPrefixes: []string{fixturePath},
		StoreTypes:  []lint.TypeRef{{Pkg: fixturePath, Name: "WAL"}},
	}))
}

func TestErrDropGolden(t *testing.T) {
	fixturePath := "symfail/internal/lint/testdata/src/errdropfix"
	checkGolden(t, "errdropfix", lint.NewErrDrop(lint.ErrDropConfig{
		StoreTypes:  []lint.TypeRef{{Pkg: fixturePath, Name: "Flash"}},
		ResultTypes: []lint.TypeRef{{Pkg: fixturePath, Name: "Recovery"}},
	}))
}

// TestTransitiveDeterminismGolden restricts only the fixture's engine
// package and checks the leaks through the unrestricted sched/clock layers
// are reported with their full call chains.
func TestTransitiveDeterminismGolden(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/lint/testdata/src/transdetfix/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 3 {
		t.Fatalf("got %d packages, want 3 (clock, engine, sched)", len(pkgs))
	}
	checkGoldenPkgs(t, "transdetfix", pkgs, lint.NewDeterminism(lint.DeterminismConfig{
		RestrictedPrefixes: []string{"symfail/internal/lint/testdata/src/transdetfix/engine"},
	}))
}

// TestRunDeterministicOrder pins the Run output-order contract: the same
// packages and analyzers, fed in reversed orders, must render byte-identical
// diagnostics.
func TestRunDeterministicOrder(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(
		"./internal/lint/testdata/src/ackorderfix",
		"./internal/lint/testdata/src/errdropfix",
		"./internal/lint/testdata/src/transdetfix/...",
	)
	if err != nil {
		t.Fatal(err)
	}
	ackPath := "symfail/internal/lint/testdata/src/ackorderfix"
	errPath := "symfail/internal/lint/testdata/src/errdropfix"
	mkAnalyzers := func() []*lint.Analyzer {
		return []*lint.Analyzer{
			lint.NewDeterminism(lint.DeterminismConfig{
				RestrictedPrefixes: []string{"symfail/internal/lint/testdata/src/transdetfix/engine"},
			}),
			lint.NewAckOrder(lint.AckOrderConfig{
				PkgPrefixes: []string{ackPath},
				StoreTypes:  []lint.TypeRef{{Pkg: ackPath, Name: "WAL"}},
			}),
			lint.NewErrDrop(lint.ErrDropConfig{
				StoreTypes:  []lint.TypeRef{{Pkg: errPath, Name: "Flash"}},
				ResultTypes: []lint.TypeRef{{Pkg: errPath, Name: "Recovery"}},
			}),
		}
	}
	render := func(pkgs []*lint.Package, analyzers []*lint.Analyzer) string {
		var b strings.Builder
		for _, d := range lint.Run(pkgs, analyzers) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	reverse := func(n int, swap func(i, j int)) {
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			swap(i, j)
		}
	}

	forward := render(pkgs, mkAnalyzers())
	if forward == "" {
		t.Fatal("fixtures produced no diagnostics; the order test is vacuous")
	}
	revPkgs := append([]*lint.Package(nil), pkgs...)
	reverse(len(revPkgs), func(i, j int) { revPkgs[i], revPkgs[j] = revPkgs[j], revPkgs[i] })
	revAnalyzers := mkAnalyzers()
	reverse(len(revAnalyzers), func(i, j int) { revAnalyzers[i], revAnalyzers[j] = revAnalyzers[j], revAnalyzers[i] })
	if backward := render(revPkgs, revAnalyzers); backward != forward {
		t.Errorf("diagnostic order depends on input order.\nforward:\n%s\nbackward:\n%s", forward, backward)
	}
}

// TestSymlintExitCodes drives the real CLI contract end to end: non-zero
// with a correct file:line diagnostic on a fixture, zero on clean packages.
func TestRunOnCleanPackage(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run(pkgs, lint.DefaultAnalyzers())
	for _, d := range diags {
		t.Errorf("unexpected diagnostic on internal/sim: %s", d)
	}
}
