package core_test

import (
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// BenchmarkLoggedDeviceMonth measures one instrumented phone-month —
// the logger's overhead sits on top of BenchmarkDeviceMonth in the phone
// package.
func BenchmarkLoggedDeviceMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := phone.NewDevice("bench", eng, phone.DefaultConfig(uint64(i+1)))
		core.Install(d, core.Config{})
		d.Enroll(sim.Epoch)
		if err := eng.Run(sim.Epoch.Add(30 * 24 * time.Hour)); err != nil {
			b.Fatal(err)
		}
		d.Finalize()
	}
}

// BenchmarkRecordEncodeDecode measures the Log File record codec.
func BenchmarkRecordEncodeDecode(b *testing.B) {
	rec := core.Record{
		Kind: core.KindPanic, Time: 123456789, Category: "KERN-EXEC", PType: 3,
		Apps: []string{"Messages", "Telephone", "Log"}, Activity: "voice-call",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		line := core.EncodeRecord(rec)
		if recs := core.ParseRecords(line); len(recs) != 1 {
			b.Fatal("codec broke")
		}
	}
}

// BenchmarkParseStudyLog measures parsing a realistic full-study Log File.
func BenchmarkParseStudyLog(b *testing.B) {
	var buf []byte
	for i := 0; i < 2000; i++ {
		buf = append(buf, core.EncodeRecord(core.Record{
			Kind: core.KindBoot, Time: int64(i) * 1e12, Boot: i + 1,
			Detected: core.DetectedShutdown, PrevBeat: core.BeatReboot,
			PrevTime: int64(i)*1e12 - 9e10, OffSeconds: 90,
		})...)
		if i%4 == 0 {
			buf = append(buf, core.EncodeRecord(core.Record{
				Kind: core.KindPanic, Time: int64(i)*1e12 + 5e11,
				Category: "KERN-EXEC", PType: 3,
				Apps: []string{"Messages"}, Activity: "voice-call",
			})...)
		}
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := core.ParseRecords(buf); len(recs) != 2500 {
			b.Fatalf("parsed %d", len(recs))
		}
	}
}
