module symfail

go 1.24
