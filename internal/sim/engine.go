package sim

import (
	"errors"
	"fmt"
	"time"
)

// Duration aliases time.Duration so that sim-facing code can express delays
// without importing both packages.
type Duration = time.Duration

// ErrStopped is returned by Engine.Run when Stop was called before the run
// limit was reached.
var ErrStopped = errors.New("sim: engine stopped")

// eventNode is the engine-owned storage behind an Event handle. Nodes are
// pooled on a per-engine free list: once an event fires or is cancelled its
// node is recycled for the next Schedule, so the steady-state event cycle
// allocates nothing. The generation counter is what keeps recycling safe —
// it is bumped exactly when the node is released, so every handle ever
// issued for a previous incarnation goes stale atomically.
type eventNode struct {
	when  Time
	seq   uint64 // tie-break so equal-time events fire in schedule order
	gen   uint64 // incarnation; Event handles capture it at issue time
	fn    func()
	label string

	// Intrusive links. In the wheel the node sits on exactly one doubly
	// linked list (a slot, the ready list, or the overflow level); on the
	// free list only next is used. The reference heap uses heapIndex.
	next, prev *eventNode
	home       int8 // one of homeFree..homeOverflow
	lvl, slot  int8 // wheel slot coordinates when home == homeSlot
	heapIndex  int32
}

// Node homes.
const (
	homeFree int8 = iota
	homeReady
	homeSlot
	homeOverflow
	homeHeap
)

// Event is a cancellable handle to a scheduled callback, returned by the
// scheduling methods. It is a value: copy it freely, compare it to the zero
// Event to mean "no event". The handle stays valid forever — once the event
// fires or is cancelled the handle merely reports Pending() == false and
// Cancel becomes a no-op, even though the engine has long recycled the
// underlying node for another event (the generation captured at scheduling
// time can never match a recycled node again).
type Event struct {
	n     *eventNode
	gen   uint64
	when  Time
	label string
}

// When returns the instant the event is (or was) scheduled for.
func (e Event) When() Time { return e.when }

// Label returns the diagnostic label given at scheduling time.
func (e Event) Label() string { return e.label }

// Pending reports whether the event is still waiting to fire.
func (e Event) Pending() bool { return e.n != nil && e.n.gen == e.gen }

// eventQueue is the contract between the engine and its pending-event
// store. Two implementations exist: the hierarchical timing wheel (the
// default — O(1) schedule and amortised O(1) pop with small per-slot
// sorts) and the binary heap retained as the differential-testing
// reference. Both must fire events in exactly (when, seq) order; the
// wheel-vs-heap property and fuzz tests hold them to the byte.
type eventQueue interface {
	// Len returns the number of pending events.
	Len() int
	// Schedule inserts a node (when >= now holds; the engine clamps).
	// now lets an implementation resync its cursor after idle gaps.
	Schedule(n *eventNode, now Time)
	// Remove unlinks a pending node (the node is guaranteed pending).
	Remove(n *eventNode)
	// PopMin removes and returns the minimum (when, seq) node, or nil.
	PopMin() *eventNode
	// PeekWhen returns the minimum pending when. It may advance internal
	// cursors but must not change which events are pending or their order.
	PeekWhen() (Time, bool)
	// name labels the implementation for diagnostics.
	name() string
}

// Engine is a single-threaded discrete-event scheduler.
//
// Ownership contract: an Engine and everything scheduled on it belong to
// exactly one goroutine at a time. The simulation is deterministic
// precisely because a single goroutine advances each engine; nothing in
// the Engine is locked, and nothing may be. Parallelism is achieved by
// sharding, never by sharing: give each independent shard of the world its
// own Engine (and its own RNG streams — see Rand.Split) and run whole
// shards on separate workers, e.g. via RunShards. Two shards must not
// share an engine, schedule onto each other's engines, or touch each
// other's state; cross-shard results are combined only after the shards
// finish, through an order-independent merge (see internal/collect).
//
// The single-goroutine contract is also what makes the event pool safe:
// nodes recycled by this engine can only ever be re-issued by this engine,
// on this goroutine, so a handle's generation check is race-free.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
	free    *eventNode
}

// NewEngine returns an engine whose clock reads Epoch, backed by the
// hierarchical timing wheel.
func NewEngine() *Engine {
	return &Engine{queue: newWheel()}
}

// newEngineWithQueue builds an engine over an explicit queue implementation
// (the differential tests drive a heap-backed engine against the wheel).
func newEngineWithQueue(q eventQueue) *Engine {
	return &Engine{queue: q}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// alloc takes a node from the free list, or makes one.
func (e *Engine) alloc() *eventNode {
	n := e.free
	if n == nil {
		return &eventNode{}
	}
	e.free = n.next
	n.next = nil
	return n
}

// release recycles a node whose event fired or was cancelled. Bumping the
// generation here is the single point that invalidates every outstanding
// handle to the old incarnation.
func (e *Engine) release(n *eventNode) {
	n.gen++
	n.fn = nil
	n.label = ""
	n.prev = nil
	n.home = homeFree
	n.next = e.free
	e.free = n
}

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// is an error in the model, so it fires immediately at the current time
// instead of silently rewinding the clock.
func (e *Engine) At(t Time, label string, fn func()) Event {
	if t < e.now {
		t = e.now
	}
	n := e.alloc()
	n.when = t
	n.seq = e.seq
	n.fn = fn
	n.label = label
	e.seq++
	e.queue.Schedule(n, e.now)
	return Event{n: n, gen: n.gen, when: t, label: label}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, label string, fn func()) Event {
	return e.At(e.now.Add(d), label, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op — the handle's generation no longer matches the node's,
// however the node has been recycled since. It reports whether the event
// was actually cancelled.
func (e *Engine) Cancel(ev Event) bool {
	if ev.n == nil || ev.n.gen != ev.gen {
		return false
	}
	e.queue.Remove(ev.n)
	e.release(ev.n)
	return true
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	n := e.queue.PopMin()
	if n == nil {
		return false
	}
	e.now = n.when
	e.fired++
	fn := n.fn
	// Release before running so a self-re-arming callback (the dominant
	// workload shape: heartbeats, periodic uploads) reuses this very node.
	e.release(n)
	fn()
	return true
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. The clock is left at min(until, last event time); if the
// queue drained first, the clock is advanced to until so that callers can
// reason about "the simulation covered [0, until)".
func (e *Engine) Run(until Time) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		next, ok := e.queue.PeekWhen()
		if !ok {
			if e.now < until {
				e.now = until
			}
			return nil
		}
		if next > until {
			e.now = until
			return nil
		}
		e.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Stop halts a Run in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// String summarises engine state for diagnostics.
func (e *Engine) String() string {
	return fmt.Sprintf("engine{now=%s pending=%d fired=%d queue=%s}",
		e.now, e.queue.Len(), e.fired, e.queue.name())
}

// heapQueue is the binary-heap reference implementation, ordered by
// (when, seq). It predates the timing wheel and is retained as the oracle
// the wheel is differentially tested against.
type heapQueue struct {
	nodes []*eventNode
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (q *heapQueue) name() string { return "heap" }

func (q *heapQueue) Len() int { return len(q.nodes) }

func (q *heapQueue) less(i, j int) bool {
	a, b := q.nodes[i], q.nodes[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (q *heapQueue) swap(i, j int) {
	q.nodes[i], q.nodes[j] = q.nodes[j], q.nodes[i]
	q.nodes[i].heapIndex = int32(i)
	q.nodes[j].heapIndex = int32(j)
}

func (q *heapQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *heapQueue) down(i int) {
	n := len(q.nodes)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && q.less(right, left) {
			least = right
		}
		if !q.less(least, i) {
			return
		}
		q.swap(i, least)
		i = least
	}
}

func (q *heapQueue) Schedule(n *eventNode, _ Time) {
	n.home = homeHeap
	n.heapIndex = int32(len(q.nodes))
	q.nodes = append(q.nodes, n)
	q.up(len(q.nodes) - 1)
}

func (q *heapQueue) Remove(n *eventNode) {
	i := int(n.heapIndex)
	last := len(q.nodes) - 1
	if i != last {
		q.swap(i, last)
	}
	q.nodes[last] = nil
	q.nodes = q.nodes[:last]
	if i != last {
		q.down(i)
		q.up(i)
	}
}

func (q *heapQueue) PopMin() *eventNode {
	if len(q.nodes) == 0 {
		return nil
	}
	n := q.nodes[0]
	q.Remove(n)
	return n
}

func (q *heapQueue) PeekWhen() (Time, bool) {
	if len(q.nodes) == 0 {
		return 0, false
	}
	return q.nodes[0].when, true
}
