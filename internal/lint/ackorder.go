package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// AckOrderConfig anchors the ackorder analyzer to the module layout.
type AckOrderConfig struct {
	// PkgPrefixes are the packages whose functions are checked (and whose
	// callees are summarized). Default: the collection tier.
	PkgPrefixes []string
	// StoreTypes are the WAL-bearing store types; their Append and Sync
	// methods are the durability primitives the ordering is stated over.
	StoreTypes []TypeRef
}

// DefaultAckOrderConfig matches the symfail module.
var DefaultAckOrderConfig = AckOrderConfig{
	PkgPrefixes: []string{"symfail/internal/collect"},
	StoreTypes:  []TypeRef{{Pkg: "symfail/internal/collect", Name: "CrashStore"}},
}

// The abstract state tracks two facts per control-flow path: is there a
// WAL append not yet covered by a Sync, and has a reply already been
// written to the connection. A path is a durability violation when a reply
// happens while an append is pending (acked data might not survive a
// crash), or when an append happens after a reply (the ACK on the wire
// cannot cover it).
type ackState uint8

const (
	apPending ackState = 1 << 0 // un-synced WAL append on this path
	apAcked   ackState = 1 << 1 // a reply has been written on this path
)

// stateSet is a bitmask over the four abstract states (bit i set ⇔ state
// i ∈ the set). Sets make the analysis path-sensitive: branches union
// their outcome sets instead of collapsing to one merged state.
type stateSet uint8

const cleanStates stateSet = 1 << 0 // the singleton {no pending, no ack}

func singleton(s ackState) stateSet { return 1 << s }

// eachState invokes f for every abstract state in the set and unions the
// transformed results.
func eachState(in stateSet, f func(ackState) stateSet) stateSet {
	var out stateSet
	for s := ackState(0); s < 4; s++ {
		if in&singleton(s) != 0 {
			out |= f(s)
		}
	}
	return out
}

// ackSummary is a function's effect, split by boolean return value so a
// caller branching on the result (`if !s.commit(e) { return }`) keeps the
// crash path and the success path separate. Functions that do not return
// bool carry the same set under both keys.
type ackSummary struct {
	onTrue  stateSet
	onFalse stateSet
}

func (s ackSummary) all() stateSet { return s.onTrue | s.onFalse }

func identitySummary(in stateSet) ackSummary { return ackSummary{onTrue: in, onFalse: in} }

// NewAckOrder builds the ackorder analyzer, the static twin of the
// collection tier's "acked ⊆ synced" invariant: on no control-flow path
// through a collect-package function may a reply reach the connection
// while a WAL append is unsynced, and no WAL append may follow a reply.
//
// The check is a path-sensitive abstract interpretation over each
// function's statement structure, with interprocedural effect summaries
// for callees inside the configured packages. Summaries are keyed by
// boolean return value, so the idiomatic `if !commit(e) { return }`
// correlation is understood exactly. Replies are writes through
// fmt.Fprint* (or raw Write/WriteString) to a net.Conn; a string literal
// first payload that does not begin with "OK" (an "ERR ..." rejection, a
// client verb header) is not a reply, and a non-literal payload is
// conservatively treated as one.
//
// Known approximations (all erring toward reporting): effects inside
// defer and go statements are applied at the statement's position;
// switch cases are analyzed without fallthrough chaining; loop analysis
// runs to a fixpoint over the state sets; recursive call cycles are cut
// with an identity summary.
func NewAckOrder(cfg AckOrderConfig) *Analyzer {
	if cfg.PkgPrefixes == nil {
		cfg = DefaultAckOrderConfig
	}
	a := &Analyzer{
		Name: "ackorder",
		Doc:  "prove no connection reply precedes the corresponding WAL append+sync on any control-flow path",
	}
	a.Run = func(pass *Pass) {
		if !pathHasPrefix(pass.Pkg.Path, cfg.PkgPrefixes) {
			return
		}
		an := &ackAnalyzer{
			pass:     pass,
			cfg:      cfg,
			g:        pass.Graph(),
			memo:     make(map[ackMemoKey]ackSummary),
			active:   make(map[ackMemoKey]bool),
			reported: make(map[token.Pos]map[string]bool),
		}
		for _, n := range an.g.FuncsOf(pass.Pkg) {
			an.analyze(n, cleanStates)
		}
	}
	return a
}

type ackMemoKey struct {
	fn    *types.Func
	entry stateSet
}

type ackAnalyzer struct {
	pass     *Pass
	cfg      AckOrderConfig
	g        *CallGraph
	memo     map[ackMemoKey]ackSummary
	active   map[ackMemoKey]bool // recursion guard
	reported map[token.Pos]map[string]bool

	conn         *types.Interface // net.Conn, resolved lazily through imports
	connResolved bool
}

func (a *ackAnalyzer) report(pos token.Pos, msg string) {
	if a.reported[pos] == nil {
		a.reported[pos] = make(map[string]bool)
	}
	if a.reported[pos][msg] {
		return
	}
	a.reported[pos][msg] = true
	a.pass.Reportf(pos, "%s", msg)
}

// analyze computes (and memoizes) the effect summary of one function for a
// given entry state set, reporting violations found along the way.
func (a *ackAnalyzer) analyze(n *CGNode, entry stateSet) ackSummary {
	key := ackMemoKey{fn: n.Fn, entry: entry}
	if sum, ok := a.memo[key]; ok {
		return sum
	}
	if a.active[key] {
		return identitySummary(entry) // recursion: cut the cycle
	}
	if n.Decl == nil || n.Decl.Body == nil || n.Pkg == nil || !pathHasPrefix(n.Pkg.Path, a.cfg.PkgPrefixes) {
		return identitySummary(entry)
	}
	a.active[key] = true
	fc := &ackFuncCtx{an: a, node: n, boolResult: lastResultIsBool(n.Fn)}
	out := fc.stmt(n.Decl.Body, entry)
	if out != 0 { // falling off the end is an exit too
		fc.retTrue |= out
		fc.retFalse |= out
	}
	sum := ackSummary{onTrue: fc.retTrue, onFalse: fc.retFalse}
	delete(a.active, key)
	a.memo[key] = sum
	return sum
}

func lastResultIsBool(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	basic, ok := sig.Results().At(sig.Results().Len() - 1).Type().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// ackFuncCtx is the per-function walking context.
type ackFuncCtx struct {
	an         *ackAnalyzer
	node       *CGNode
	boolResult bool
	retTrue    stateSet
	retFalse   stateSet
	loops      []*ackLoopCtx
}

type ackLoopCtx struct {
	breaks    stateSet
	continues stateSet
}

// stmt transforms the state set through one statement, returning the
// fall-through set (0 when control cannot fall through).
func (fc *ackFuncCtx) stmt(s ast.Stmt, in stateSet) stateSet {
	if in == 0 || s == nil {
		return in
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			in = fc.stmt(sub, in)
		}
		return in
	case *ast.IfStmt:
		return fc.ifStmt(s, in)
	case *ast.ForStmt:
		in = fc.stmt(s.Init, in)
		return fc.loop(in, s.Cond, s.Body, s.Post, s.Cond == nil)
	case *ast.RangeStmt:
		in = fc.expr(s.X, in)
		return fc.loop(in, nil, s.Body, nil, false)
	case *ast.SwitchStmt:
		in = fc.stmt(s.Init, in)
		in = fc.expr(s.Tag, in)
		return fc.caseClauses(s.Body, in)
	case *ast.TypeSwitchStmt:
		in = fc.stmt(s.Init, in)
		return fc.caseClauses(s.Body, in)
	case *ast.SelectStmt:
		var out stateSet
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := fc.stmt(cc.Comm, in)
			for _, sub := range cc.Body {
				branch = fc.stmt(sub, branch)
			}
			out |= branch
		}
		if len(s.Body.List) == 0 {
			out = in
		}
		return out
	case *ast.ReturnStmt:
		fc.returns(s, in)
		return 0
	case *ast.BranchStmt:
		return fc.branch(s, in)
	case *ast.ExprStmt:
		return fc.expr(s.X, in)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			in = fc.expr(e, in)
		}
		for _, e := range s.Lhs {
			in = fc.expr(e, in)
		}
		return in
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						in = fc.expr(v, in)
					}
				}
			}
		}
		return in
	case *ast.DeferStmt:
		return fc.expr(s.Call, in) // effects charged at the defer site (documented over-approximation)
	case *ast.GoStmt:
		return fc.expr(s.Call, in)
	case *ast.SendStmt:
		in = fc.expr(s.Value, in)
		return fc.expr(s.Chan, in)
	case *ast.IncDecStmt:
		return fc.expr(s.X, in)
	case *ast.LabeledStmt:
		return fc.stmt(s.Stmt, in)
	case *ast.EmptyStmt:
		return in
	}
	return in
}

// ifStmt splits the state by the condition. When the condition is exactly
// a call (or its negation) into a summarized function with a boolean
// result, the then/else branches receive the summary's per-result sets —
// the `if !s.commit(e) { return }` correlation.
func (fc *ackFuncCtx) ifStmt(s *ast.IfStmt, in stateSet) stateSet {
	in = fc.stmt(s.Init, in)
	thenIn, elseIn := fc.cond(s.Cond, in)
	thenOut := fc.stmt(s.Body, thenIn)
	elseOut := elseIn
	if s.Else != nil {
		elseOut = fc.stmt(s.Else, elseIn)
	}
	return thenOut | elseOut
}

// cond evaluates a boolean condition, returning the state sets that reach
// the then and else branches respectively.
func (fc *ackFuncCtx) cond(e ast.Expr, in stateSet) (onTrue, onFalse stateSet) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		t, f := fc.cond(u.X, in)
		return f, t
	}
	if call, ok := e.(*ast.CallExpr); ok {
		if sum, ok := fc.summarizedCall(call, in); ok {
			return sum.onTrue, sum.onFalse
		}
	}
	out := fc.expr(e, in)
	return out, out
}

// summarizedCall applies a call to a summarizable in-scope function:
// argument effects first, then the callee summary. ok is false when the
// call is a durability primitive, a reply, or out of scope.
func (fc *ackFuncCtx) summarizedCall(call *ast.CallExpr, in stateSet) (ackSummary, bool) {
	if fc.opOf(call) != ackOpNone {
		return ackSummary{}, false
	}
	fn := calleeOf(fc.node.Pkg.Info, call)
	if fn == nil {
		return ackSummary{}, false
	}
	callee := fc.an.g.NodeOf(fn)
	if callee == nil || callee.Decl == nil || callee.Pkg == nil || !pathHasPrefix(callee.Pkg.Path, fc.an.cfg.PkgPrefixes) {
		return ackSummary{}, false
	}
	pre := fc.callArgs(call, in)
	return fc.an.analyze(callee, pre), true
}

// callArgs applies the effects of evaluating a call's function expression
// and arguments (Go evaluates them before the call itself).
func (fc *ackFuncCtx) callArgs(call *ast.CallExpr, in stateSet) stateSet {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		in = fc.expr(sel.X, in)
	}
	for _, arg := range call.Args {
		in = fc.expr(arg, in)
	}
	return in
}

// expr transforms the state set through one expression, applying the
// durability ops of every call inside it.
func (fc *ackFuncCtx) expr(e ast.Expr, in stateSet) stateSet {
	if e == nil || in == 0 {
		return in
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		in = fc.callArgs(e, in)
		return fc.applyCall(e, in)
	case *ast.ParenExpr:
		return fc.expr(e.X, in)
	case *ast.UnaryExpr:
		return fc.expr(e.X, in)
	case *ast.BinaryExpr:
		in = fc.expr(e.X, in)
		return fc.expr(e.Y, in)
	case *ast.SelectorExpr:
		return fc.expr(e.X, in)
	case *ast.IndexExpr:
		in = fc.expr(e.X, in)
		return fc.expr(e.Index, in)
	case *ast.SliceExpr:
		in = fc.expr(e.X, in)
		in = fc.expr(e.Low, in)
		in = fc.expr(e.High, in)
		return fc.expr(e.Max, in)
	case *ast.StarExpr:
		return fc.expr(e.X, in)
	case *ast.TypeAssertExpr:
		return fc.expr(e.X, in)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			in = fc.expr(el, in)
		}
		return in
	case *ast.KeyValueExpr:
		return fc.expr(e.Value, in)
	case *ast.FuncLit:
		// A literal's body runs when called, not here; its effects are
		// charged to this function when it is invoked directly, and the
		// errdrop/determinism layers cover escaped closures.
		return in
	}
	return in
}

// applyCall applies one call's durability op or callee summary (arguments
// already evaluated).
func (fc *ackFuncCtx) applyCall(call *ast.CallExpr, in stateSet) stateSet {
	switch fc.opOf(call) {
	case ackOpAppend:
		return eachState(in, func(s ackState) stateSet {
			if s&apAcked != 0 {
				fc.an.report(call.Pos(), "WAL append after a reply was already written on this path: the acknowledgement on the wire cannot cover it")
			}
			return singleton(s | apPending)
		})
	case ackOpSync:
		return eachState(in, func(s ackState) stateSet {
			return singleton(s &^ apPending)
		})
	case ackOpAck:
		return eachState(in, func(s ackState) stateSet {
			if s&apPending != 0 {
				fc.an.report(call.Pos(), "reply may reach the connection before the WAL sync on this path: acknowledge only after Append+Sync")
			}
			return singleton(s | apAcked)
		})
	}
	fn := calleeOf(fc.node.Pkg.Info, call)
	if fn == nil {
		return in
	}
	callee := fc.an.g.NodeOf(fn)
	if callee == nil || callee.Decl == nil || callee.Pkg == nil || !pathHasPrefix(callee.Pkg.Path, fc.an.cfg.PkgPrefixes) {
		return in
	}
	return fc.an.analyze(callee, in).all()
}

type ackOp int

const (
	ackOpNone ackOp = iota
	ackOpAppend
	ackOpSync
	ackOpAck
)

// opOf classifies a call as one of the three durability primitives.
func (fc *ackFuncCtx) opOf(call *ast.CallExpr) ackOp {
	info := fc.node.Pkg.Info
	fn := calleeOf(info, call)
	if fn == nil {
		return ackOpNone
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ackOpNone
	}
	// Append / Sync on a configured store type.
	if sig.Recv() != nil && matchesRef(sig.Recv().Type(), fc.an.cfg.StoreTypes) {
		switch fn.Name() {
		case "Append":
			return ackOpAppend
		case "Sync":
			return ackOpSync
		}
		return ackOpNone
	}
	// fmt.Fprint* with a net.Conn destination.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") {
		if len(call.Args) >= 1 && fc.isConn(call.Args[0]) && fc.isReplyPayload(call.Args[1:]) {
			return ackOpAck
		}
		return ackOpNone
	}
	// Raw writes on a net.Conn receiver: payload invisible, conservatively
	// a reply.
	if sig.Recv() != nil && (fn.Name() == "Write" || fn.Name() == "WriteString") {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && fc.isConn(sel.X) {
			return ackOpAck
		}
	}
	return ackOpNone
}

// isConn reports whether e's static type is (or implements) net.Conn.
func (fc *ackFuncCtx) isConn(e ast.Expr) bool {
	t := fc.node.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	conn := fc.an.netConn(fc.node.Pkg)
	if conn == nil {
		return false
	}
	return types.Implements(t, conn) || types.Implements(types.NewPointer(t), conn)
}

// isReplyPayload reports whether the payload could be a positive reply: a
// leading string literal not starting with "OK" (an error rejection or a
// client verb header) is not, anything else conservatively is.
func (fc *ackFuncCtx) isReplyPayload(args []ast.Expr) bool {
	if len(args) == 0 {
		return true
	}
	tv, ok := fc.node.Pkg.Info.Types[args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.HasPrefix(constant.StringVal(tv.Value), "OK")
}

// netConn resolves the net.Conn interface through the package's imports.
func (a *ackAnalyzer) netConn(pkg *Package) *types.Interface {
	if a.connResolved {
		return a.conn
	}
	a.connResolved = true
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() != "net" {
			continue
		}
		if tn, ok := imp.Scope().Lookup("Conn").(*types.TypeName); ok {
			a.conn, _ = tn.Type().Underlying().(*types.Interface)
		}
	}
	return a.conn
}

// returns records one exit, classified by the constant boolean result when
// the function returns bool (so callers can correlate on it).
func (fc *ackFuncCtx) returns(s *ast.ReturnStmt, in stateSet) {
	for _, res := range s.Results {
		in = fc.expr(res, in)
	}
	if fc.boolResult && len(s.Results) == 1 {
		if tv, ok := fc.node.Pkg.Info.Types[s.Results[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Bool {
			if constant.BoolVal(tv.Value) {
				fc.retTrue |= in
			} else {
				fc.retFalse |= in
			}
			return
		}
	}
	fc.retTrue |= in
	fc.retFalse |= in
}

// branch handles break and continue against the innermost loop; goto is
// treated as falling through (the module has none).
func (fc *ackFuncCtx) branch(s *ast.BranchStmt, in stateSet) stateSet {
	if len(fc.loops) == 0 {
		return in
	}
	lc := fc.loops[len(fc.loops)-1]
	switch s.Tok {
	case token.BREAK:
		lc.breaks |= in
		return 0
	case token.CONTINUE:
		lc.continues |= in
		return 0
	}
	return in
}

// loop runs a loop body to a fixpoint over the state sets (the lattice has
// four points, so this terminates in at most four rounds).
func (fc *ackFuncCtx) loop(in stateSet, cond ast.Expr, body *ast.BlockStmt, post ast.Stmt, infinite bool) stateSet {
	lc := &ackLoopCtx{}
	fc.loops = append(fc.loops, lc)
	head := in
	var afterCond stateSet
	for {
		afterCond = fc.expr(cond, head)
		out := fc.stmt(body, afterCond)
		out = fc.stmt(post, out|lc.continues)
		next := head | out
		if next == head {
			break
		}
		head = next
	}
	fc.loops = fc.loops[:len(fc.loops)-1]
	if infinite {
		return lc.breaks
	}
	return afterCond | lc.breaks
}

// caseClauses unions the outcomes of a switch body's clauses (fallthrough
// is not chained — each clause is analyzed from the dispatch state, which
// over-approximates by union).
func (fc *ackFuncCtx) caseClauses(body *ast.BlockStmt, in stateSet) stateSet {
	var out stateSet
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch := in
		for _, e := range cc.List {
			branch = fc.expr(e, branch)
		}
		for _, sub := range cc.Body {
			branch = fc.stmt(sub, branch)
		}
		out |= branch
	}
	if !hasDefault {
		out |= in
	}
	return out
}
