// Fleetstudy: the paper's deployment end to end — 25 instrumented phones,
// 14 months, logs collected over a local TCP collection server, analysed
// into the section 6 headline numbers.
package main

import (
	"fmt"

	"symfail"
	"symfail/internal/report"
)

func main() {
	cfg := symfail.DefaultFieldStudyConfig(2007)

	// Collect the Log Files over the network path, as the study's
	// automated transfer infrastructure did.
	study, srv, err := symfail.RunFieldStudyWithCollector(cfg)
	if err != nil {
		fmt.Println("study:", err)
		return
	}
	defer srv.Close()

	fmt.Printf("collected %d uploads from %d phones (%.0f phone-hours observed)\n\n",
		srv.Uploads(), len(study.Fleet.Devices), study.Fleet.ObservedHours())

	fmt.Println(report.MTBF(study.Study))
	fmt.Println(report.Figure2(study.Study))
	fmt.Println(report.Table2(study.Study))
}
