// Prediction: turn the paper's Figure 5 insight — system panics usually
// precede freezes and self-shutdowns — into an online early-warning policy,
// and score it against the collected study data. Also demonstrates the
// collect-once / analyse-many workflow via dataset export.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"symfail"
	"symfail/internal/analysis"
	"symfail/internal/collect"
	"symfail/internal/phone"
)

func main() {
	// Simulate a medium deployment.
	study, err := symfail.RunFieldStudy(symfail.FieldStudyConfig{
		Seed:       2007,
		Phones:     12,
		Duration:   8 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth,
	})
	if err != nil {
		fmt.Println("study:", err)
		return
	}

	// Export the dataset so it can be re-analysed offline (cmd/analyze).
	dir := filepath.Join(os.TempDir(), "symfail-prediction-demo")
	if err := collect.ExportDir(study.Dataset, dir); err != nil {
		fmt.Println("export:", err)
		return
	}
	ds, err := collect.ImportDir(dir)
	if err != nil {
		fmt.Println("import:", err)
		return
	}
	s := analysis.New(ds.AllRecords(), analysis.Options{})

	fmt.Printf("dataset: %d phones, %d panics, %d high-level failures (exported to %s)\n\n",
		len(s.Devices()), len(s.Panics()),
		len(s.HLEvents(analysis.HLFreeze, analysis.HLSelfShutdown)), dir)

	// Policy 1: alarm on every panic.
	// Policy 2: alarm only on the failure-coupled system categories.
	// Policy 3: alarm only on the UI/application categories (a bad idea,
	// per Figure 5b — those panics never escalate).
	policies := []struct {
		name string
		cats []string
	}{
		{"every panic", nil},
		{"system panics", analysis.DefaultPredictorConfig().AlarmCategories},
		{"app panics only", []string{"EIKON-LISTBOX", "EIKCOCTL", "MMFAudioClient"}},
	}
	fmt.Println("policy comparison (10-minute horizon):")
	for _, p := range policies {
		rep := s.EvaluatePredictor(analysis.PredictorConfig{
			AlarmCategories: p.cats,
			Horizon:         10 * time.Minute,
			LeadSlack:       5 * time.Minute, // tolerate freeze-timestamp skew
		})
		fmt.Printf("  %-16s alarms %-4d precision %.2f  recall %.2f  median warning %3.0f s\n",
			p.name, rep.Alarms, rep.Precision, rep.Recall, rep.MedianWarningSeconds)
	}

	fmt.Println("\nhorizon sweep for the system-panic policy:")
	horizons := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour}
	for i, rep := range s.PredictorSweep(analysis.DefaultPredictorConfig().AlarmCategories, horizons) {
		fmt.Printf("  %-8v precision %.2f  recall %.2f\n", horizons[i], rep.Precision, rep.Recall)
	}

	fit := s.InterFailureExpFit()
	fmt.Printf("\ninter-failure times: n=%d mean=%.0f h, KS D=%.3f (crit %.3f) -> exponential %v\n",
		fit.N, fit.MeanHours, fit.KS, fit.KSCritical05, fit.PassesKS)
	fmt.Println("\nthe takeaway matches the paper: panics explain a real but minority share of")
	fmt.Println("user-perceived failures, so panic-only prediction has bounded recall.")
}
