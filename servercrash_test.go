package symfail

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"symfail/internal/collect"
)

// crashFingerprint extends the adversity witness with the crash/recover
// history: with Workers:1 the kill schedule, the crashpoints hit, the torn
// WAL tails and the recovered dataset are all pure functions of the seed.
type crashFingerprint struct {
	advFingerprint
	Crashes     int `json:"crashes"`
	Restarts    int `json:"restarts"`
	Compactions int `json:"compactions"`
}

// serverCrashStudyConfig is the pinned calibration for the golden
// server-crash run: the full adversity menu plus a kill every 3-9 requests
// and a compaction bound small enough that kills land on the snapshot path.
func serverCrashStudyConfig() FieldStudyConfig {
	cfg := adversityStudyConfig()
	cfg.Seed = 20072007
	cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: 3, KillEveryMax: 9}
	cfg.Adversity.ServerCompactWAL = 32 << 10
	return cfg
}

func computeServerCrashFingerprint(t *testing.T, workers int) crashFingerprint {
	t.Helper()
	cfg := serverCrashStudyConfig()
	cfg.Workers = workers
	fs, sup, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if err := sup.Err(); err != nil {
		t.Fatal(err)
	}
	rep := fs.Study.MTBF()
	fp := crashFingerprint{
		Crashes:     sup.Crashes(),
		Restarts:    sup.Restarts(),
		Compactions: sup.Compactions(),
	}
	fp.Panics = len(fs.Study.Panics())
	fp.Freezes = rep.Freezes
	fp.SelfShutdowns = rep.SelfShutdowns
	fp.ObservedHours = rep.ObservedHours
	for _, d := range fs.Fleet.Devices {
		fp.Boots += d.BootCount()
		fp.TornWrites += d.FS().TornWrites()
		fp.BitFlips += d.FS().BitFlips()
	}
	if ps := fs.Study.Panics(); len(ps) > 0 {
		fp.FirstPanicKey = ps[0].Key()
		fp.FirstPanicAt = int64(ps[0].Time)
	}
	for _, l := range fs.Loggers {
		fp.LogBytes += len(l.LogBytes())
	}
	for _, id := range fs.Dataset.Devices() {
		for _, r := range fs.Dataset.Records(id) {
			fp.Salvaged += r.LogSalvaged
			fp.Lost += r.LogLost
		}
	}
	fp.DatasetCRC = fs.Dataset.CRC32C()
	return fp
}

// TestGoldenServerCrashFingerprint pins the serial crash-injected run: same
// seed and crashpoints give a byte-identical recovered dataset and the
// exact same crash/recover history, process to process. If WAL recovery
// were lossy, order-dependent or nondeterministic, DatasetCRC would drift.
func TestGoldenServerCrashFingerprint(t *testing.T) {
	path := filepath.Join("testdata", "golden_fingerprint_servercrash.json")
	got := computeServerCrashFingerprint(t, 1)
	if got.Crashes == 0 {
		t.Error("golden server-crash run injected no crashes — the witness is vacuous")
	}
	if got.Crashes != got.Restarts {
		t.Errorf("crashes %d != restarts %d in the golden run", got.Crashes, got.Restarts)
	}
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("server-crash golden updated: %+v", got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no server-crash golden (run `go test -run Golden -update .`): %v", err)
	}
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if !bytes.Equal(blob, want) {
		t.Errorf("server-crash fingerprint drifted.\n got: %s\nwant: %s\n"+
			"If the durability protocol changed intentionally, refresh with `go test -run Golden -update .`;"+
			" otherwise WAL recovery is not a pure function of the seed and crashpoints.", blob, want)
	}
}

// TestServerCrashSweepTable measures what server crashes cost: for a fixed
// study, sweep the kill rate and tabulate crashes, restarts, compactions
// and the client-side retransmission ledger. Because the collector's RNG is
// salted away from the device streams and the final collection retries, the
// recovered dataset must be byte-identical at every crash rate — the whole
// point of the WAL — which the sweep asserts via the dataset CRC. The table
// (run with -v) is the source of the EXPERIMENTS.md §"server crashes"
// numbers.
func TestServerCrashSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated uploads; skipped in -short")
	}
	kills := []int{0, 24, 12, 6}
	type row struct {
		killEvery                    int
		crashes, restarts, compact   int
		records                      int
		retries, resumes, reconnects int
		retransmitted                int64
		crc                          uint32
	}
	var rows []row
	for _, k := range kills {
		cfg := adversityStudyConfig()
		cfg.Seed = 555555
		cfg.Workers = 1
		if k > 0 {
			cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: k / 2, KillEveryMax: k + k/2}
			cfg.Adversity.ServerCompactWAL = 32 << 10
		}
		fs, sup, err := RunFieldStudyWithCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := sup.Err(); err != nil {
			t.Fatal(err)
		}
		r := row{
			killEvery: k,
			crashes:   sup.Crashes(),
			restarts:  sup.Restarts(),
			compact:   sup.Compactions(),
			crc:       fs.Dataset.CRC32C(),
		}
		for _, recs := range fs.Dataset.AllRecords() {
			r.records += len(recs)
		}
		for _, u := range fs.Uploaders {
			r.retries += u.Retries()
			r.resumes += u.Resumes()
			r.reconnects += u.Reconnects()
			r.retransmitted += u.BytesRetransmitted()
		}
		sup.Close()
		rows = append(rows, r)
	}

	t.Log("| kill every ~N requests | crashes | restarts | compactions | records recovered | retries | resumes | reconnects | bytes retransmitted |")
	t.Log("|---|---|---|---|---|---|---|---|---|")
	for _, r := range rows {
		label := "off"
		if r.killEvery > 0 {
			label = fmt.Sprintf("%d", r.killEvery)
		}
		t.Logf("| %s | %d | %d | %d | %d | %d | %d | %d | %d |",
			label, r.crashes, r.restarts, r.compact, r.records,
			r.retries, r.resumes, r.reconnects, r.retransmitted)
	}

	base := rows[0]
	if base.crashes != 0 {
		t.Errorf("baseline row crashed %d times with injection off", base.crashes)
	}
	for _, r := range rows[1:] {
		if r.crashes == 0 {
			t.Errorf("kill-every-%d row injected no crashes", r.killEvery)
		}
		if r.crc != base.crc {
			t.Errorf("kill-every-%d: dataset CRC %08x != crash-free CRC %08x — server crashes changed what was collected",
				r.killEvery, r.crc, base.crc)
		}
		if r.records != base.records {
			t.Errorf("kill-every-%d: %d records recovered, crash-free run had %d",
				r.killEvery, r.records, base.records)
		}
	}
}
