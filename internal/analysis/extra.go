package analysis

import (
	"math"
	"sort"
	"time"

	"symfail/internal/core"
)

// This file holds analyses beyond the paper's tables and figures: detection
// quality metrics the original study could not compute (it had no oracle)
// and dispersion statistics across phones.

// FreezeDowntime summarises how long frozen phones stayed down: from the
// last heartbeat before the freeze to the post-battery-pull boot. This is
// the user-visible outage of a freeze plus the logger's detection lag (one
// heartbeat period at most).
type FreezeDowntime struct {
	Count         int
	MedianSeconds float64
	P90Seconds    float64
	MaxSeconds    float64
	MeanSeconds   float64
}

// FreezeDowntimes computes the freeze outage distribution.
func (s *Study) FreezeDowntimes() FreezeDowntime {
	var xs []float64
	for _, hl := range s.allHLs(HLFreeze) {
		xs = append(xs, hl.OffSeconds)
	}
	out := FreezeDowntime{Count: len(xs)}
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	var sum float64
	for _, v := range xs {
		sum += v
	}
	out.MedianSeconds = xs[len(xs)/2]
	out.P90Seconds = xs[quantileIndex(len(xs), 0.9)]
	out.MaxSeconds = xs[len(xs)-1]
	out.MeanSeconds = sum / float64(len(xs))
	return out
}

// LeadTime is the distribution of the delay from a panic to the high-level
// event it relates to: how much warning a panic gives before the phone
// freezes or reboots. Negative values mean the panic was recorded after
// the event timestamp (possible for freezes, whose time is the last
// heartbeat).
type LeadTime struct {
	Count         int
	MedianSeconds float64
	P90Seconds    float64
}

// PanicLeadTimes computes the panic-to-failure warning distribution over
// related panics.
func (s *Study) PanicLeadTimes() LeadTime {
	var xs []float64
	for _, p := range s.allPanics() {
		if p.Related == nil {
			continue
		}
		xs = append(xs, p.Related.Time.Sub(p.Time).Seconds())
	}
	out := LeadTime{Count: len(xs)}
	if len(xs) == 0 {
		return out
	}
	sort.Float64s(xs)
	out.MedianSeconds = xs[len(xs)/2]
	out.P90Seconds = xs[quantileIndex(len(xs), 0.9)]
	return out
}

// quantileIndex returns the (ceiling) index of the q-quantile in a sorted
// slice of length n, so small samples round toward the pessimistic tail.
func quantileIndex(n int, q float64) int {
	idx := int(math.Ceil(q * float64(n-1)))
	if idx < 0 {
		return 0
	}
	if idx >= n {
		return n - 1
	}
	return idx
}

// DeviceMTBF is one phone's failure-rate summary.
type DeviceMTBF struct {
	Device        string
	Hours         float64
	Freezes       int
	SelfShutdowns int
	MTBFHours     float64 // combined, 0 when no failures
}

// PerDeviceMTBF returns each phone's own MTBF — the paper reports only the
// averaged figure; the dispersion shows how uneven individual phones are.
func (s *Study) PerDeviceMTBF() []DeviceMTBF {
	out := make([]DeviceMTBF, 0, len(s.deviceIDs))
	for _, id := range s.deviceIDs {
		d := DeviceMTBF{Device: id, Hours: s.uptime[id]}
		for _, hl := range s.hlByDevice[id] {
			switch hl.Kind {
			case HLFreeze:
				d.Freezes++
			case HLSelfShutdown:
				d.SelfShutdowns++
			}
		}
		if n := d.Freezes + d.SelfShutdowns; n > 0 {
			d.MTBFHours = d.Hours / float64(n)
		}
		out = append(out, d)
	}
	return out
}

// MTBFDispersion returns the coefficient of variation of per-device
// failure rates (failures per hour), ignoring devices with no uptime.
func (s *Study) MTBFDispersion() float64 {
	var rates []float64
	for _, d := range s.PerDeviceMTBF() {
		if d.Hours <= 0 {
			continue
		}
		rates = append(rates, float64(d.Freezes+d.SelfShutdowns)/d.Hours)
	}
	if len(rates) < 2 {
		return 0
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	mean := sum / float64(len(rates))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, r := range rates {
		ss += (r - mean) * (r - mean)
	}
	return math.Sqrt(ss/float64(len(rates))) / mean
}

// UserReportStats summarises the user-reported output failures collected
// by the core.UserReporter extension (the paper's future work).
type UserReportStats struct {
	Reports int
	// MedianReportDelay is the lag between a failure and its report.
	MedianReportDelay time.Duration
	// ByDetail counts reports per failure manifestation.
	ByDetail map[string]int
	// ByActivity counts reports per activity at failure time.
	ByActivity map[string]int
}

// UserReports extracts and summarises user-report records from a dataset.
func UserReports(dataset map[string][]core.Record) UserReportStats {
	st := UserReportStats{
		ByDetail:   make(map[string]int),
		ByActivity: make(map[string]int),
	}
	var delays []float64
	ids := make([]string, 0, len(dataset))
	for id := range dataset {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, r := range dataset[id] {
			if r.Kind != core.KindUserReport {
				continue
			}
			st.Reports++
			st.ByDetail[string(r.Detected)]++
			act := r.Activity
			if act == "" {
				act = "unspecified"
			}
			st.ByActivity[act]++
			delays = append(delays, float64(r.Time-r.PrevTime)/float64(time.Second))
		}
	}
	if len(delays) > 0 {
		sort.Float64s(delays)
		st.MedianReportDelay = time.Duration(delays[len(delays)/2] * float64(time.Second))
	}
	return st
}

// VersionStats summarises one OS version's share of the study.
type VersionStats struct {
	Version       string
	Devices       int
	Hours         float64
	Panics        int
	Freezes       int
	SelfShutdowns int
}

// VersionBreakdown groups the study per Symbian OS version (taken from the
// devices' boot records). The paper describes the deployment mix — most
// phones on 8.0 — without per-version results; this extra makes the
// breakdown available.
func (s *Study) VersionBreakdown(dataset map[string]string) []VersionStats {
	byVersion := make(map[string]*VersionStats)
	get := func(v string) *VersionStats {
		if v == "" {
			v = "unknown"
		}
		st, ok := byVersion[v]
		if !ok {
			st = &VersionStats{Version: v}
			byVersion[v] = st
		}
		return st
	}
	for _, id := range s.deviceIDs {
		st := get(dataset[id])
		st.Devices++
		st.Hours += s.uptime[id]
		st.Panics += len(s.panicsByDevice[id])
		for _, hl := range s.hlByDevice[id] {
			switch hl.Kind {
			case HLFreeze:
				st.Freezes++
			case HLSelfShutdown:
				st.SelfShutdowns++
			}
		}
	}
	versions := make([]string, 0, len(byVersion))
	for v := range byVersion {
		versions = append(versions, v)
	}
	sort.Strings(versions)
	out := make([]VersionStats, 0, len(versions))
	for _, v := range versions {
		out = append(out, *byVersion[v])
	}
	return out
}

// DeviceVersions extracts each device's OS version from its boot records.
func DeviceVersions(dataset map[string][]core.Record) map[string]string {
	out := make(map[string]string, len(dataset))
	for id, recs := range dataset {
		for _, r := range recs {
			if r.Kind == core.KindBoot && r.OSVersion != "" {
				out[id] = r.OSVersion
				break
			}
		}
	}
	return out
}

// Seasonality groups events by simulated hour of day and day of week — the
// diurnal structure of failures (failures concentrate in waking hours
// because usage does).
type Seasonality struct {
	// ByHour counts high-level failures per hour of day (0-23).
	ByHour [24]int
	// Weekday / Weekend are failure totals by day class (5-day / 2-day
	// weeks), plus per-day rates for comparison.
	Weekday, Weekend             int
	WeekdayPerDay, WeekendPerDay float64
}

// FailureSeasonality computes the diurnal and weekly failure structure.
func (s *Study) FailureSeasonality() Seasonality {
	var out Seasonality
	days := make(map[int]bool)
	for _, hl := range s.allHLs(HLFreeze, HLSelfShutdown) {
		hour := int(hl.Time.TimeOfDay().Hours())
		if hour < 0 {
			hour = 0
		}
		if hour > 23 {
			hour = 23
		}
		out.ByHour[hour]++
		day := hl.Time.Day()
		days[day] = true
		if day%7 == 5 || day%7 == 6 {
			out.Weekend++
		} else {
			out.Weekday++
		}
	}
	// Rates use the span of observed days, split 5:2.
	if len(days) > 0 {
		minDay, maxDay := 1<<62, -1
		for d := range days {
			if d < minDay {
				minDay = d
			}
			if d > maxDay {
				maxDay = d
			}
		}
		span := float64(maxDay - minDay + 1)
		weekdays := span * 5 / 7
		weekends := span * 2 / 7
		if weekdays > 0 {
			out.WeekdayPerDay = float64(out.Weekday) / weekdays
		}
		if weekends > 0 {
			out.WeekendPerDay = float64(out.Weekend) / weekends
		}
	}
	return out
}
