package collect

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"symfail/internal/sim"
)

// TestQueryVerb is the QUERY round-trip: the client's header reaches the
// hook verbatim and the hook's single-line answer comes back under OK.
func TestQueryVerb(t *testing.T) {
	srv, err := NewServerWith("127.0.0.1:0", NewDataset(), ServerConfig{
		Query: func(name string, args []string) (string, error) {
			switch name {
			case "echo":
				return fmt.Sprintf("{%q:%q}", "args", strings.Join(args, ",")), nil
			case "empty":
				return "", nil
			case "multiline":
				return "a\nb", nil
			default:
				return "", fmt.Errorf("unknown query %q", name)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	got, err := Query(srv.Addr(), "echo", "x", "y")
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"args":"x,y"}`; got != want {
		t.Errorf("echo answer = %q, want %q", got, want)
	}
	if got, err := Query(srv.Addr(), "empty"); err != nil || got != "" {
		t.Errorf("empty answer = %q, %v; want \"\", nil", got, err)
	}
	if _, err := Query(srv.Addr(), "nope"); err == nil {
		t.Error("hook error did not surface to the client")
	}
	// A hook that breaks the single-line contract is refused server-side,
	// not smeared across the wire protocol.
	if _, err := Query(srv.Addr(), "multiline"); err == nil {
		t.Error("multi-line answer was not rejected")
	}
	if _, err := Query(srv.Addr(), "bad name"); err == nil {
		t.Error("whitespace query name was not rejected client-side")
	}
	if _, err := Query(srv.Addr(), "echo", "bad arg"); err == nil {
		t.Error("whitespace query argument was not rejected client-side")
	}
	if _, err := Query(srv.Addr(), "echo", strings.Repeat("a", MaxHeaderBytes)); err == nil {
		t.Error("over-long query header was not rejected client-side")
	}
}

// TestQueryWithoutHook: a server with no Query hook refuses the verb.
func TestQueryWithoutHook(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", NewDataset())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := Query(srv.Addr(), "status"); err == nil {
		t.Error("server without a Query hook answered a QUERY")
	}
}

// TestQuerySurvivesSupervisorRestarts: the Query hook passes through
// SupervisorConfig to every incarnation, and because a QUERY is outside the
// request accounting it neither advances nor disturbs the kill schedule —
// the crash history stays exactly the no-queries one.
func TestQuerySurvivesSupervisorRestarts(t *testing.T) {
	// The hook runs on per-connection server goroutines; the counter is
	// atomic so the test itself is race-clean.
	var queries atomic.Int64
	ds := NewDataset()
	sup, err := NewSupervisor("127.0.0.1:0", ds, SupervisorConfig{
		Crash: CrashFaults{KillEveryMin: 2, KillEveryMax: 5},
		Rng:   sim.NewRand(1701),
		Query: func(name string, args []string) (string, error) {
			if name != "count" {
				return "", errors.New("unknown query")
			}
			return fmt.Sprintf("{\"queries\":%d}", queries.Add(1)), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	// A request that lands on a dying incarnation gets no reply; real
	// clients retry, and so does the test.
	retry := func(op func() error) error {
		var err error
		for attempt := 0; attempt < 10; attempt++ {
			if err = op(); err == nil {
				return nil
			}
		}
		return err
	}
	if got, err := Query(sup.Addr(), "count"); err != nil || got != `{"queries":1}` {
		t.Fatalf("first query = %q, %v", got, err)
	}
	// Drive enough counted requests through the supervisor to cross several
	// injected kills, interleaving queries with the uploads.
	data := walTestRecords(1, 2)
	for i := 0; i < 12; i++ {
		if err := retry(func() error { return Upload(sup.Addr(), "q-dev", data) }); err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		if err := retry(func() error { _, e := Query(sup.Addr(), "count"); return e }); err != nil {
			t.Fatalf("query after upload %d: %v", i, err)
		}
	}
	if sup.Crashes() == 0 {
		t.Fatal("no crashes injected — restarts were not exercised")
	}
	if queries.Load() < 13 {
		t.Errorf("hook answered %d queries, want at least 13", queries.Load())
	}
}
