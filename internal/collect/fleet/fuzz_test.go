package fleet

import (
	"fmt"
	"testing"
)

// FuzzRouter fuzzes the device-ID → shard mapping for the properties the
// fleet's correctness rides on:
//
//   - the owner is always drawn from the member list, deterministically —
//     within one epoch a device can never map to two live shards;
//   - a join moves a device only onto the joiner (rendezvous minimal
//     disruption): every device keeps its owner or is stolen by the new
//     member, never reshuffled between survivors;
//   - a leave moves only the leaver's devices: removing a non-owner leaves
//     the owner untouched.
//
// The corpus is seeded with the golden fingerprints' device IDs (phone-01
// through phone-06 cover the adversity and chaos studies' fleets).
func FuzzRouter(f *testing.F) {
	for i := 1; i <= 6; i++ {
		f.Add(fmt.Sprintf("phone-%02d", i), uint8(3))
	}
	f.Add("", uint8(0))
	f.Add("phone-01", uint8(255))

	f.Fuzz(func(t *testing.T, dev string, n uint8) {
		k := 1 + int(n)%7
		members := make([]string, 0, k)
		for i := 0; i < k; i++ {
			members = append(members, fmt.Sprintf("shard-%02d", i+1))
		}

		owner, ok := Owner(dev, members)
		if !ok {
			t.Fatalf("no owner among %d members", k)
		}
		valid := false
		for _, m := range members {
			valid = valid || m == owner
		}
		if !valid {
			t.Fatalf("owner %q not in member list %v", owner, members)
		}
		if again, _ := Owner(dev, members); again != owner {
			t.Fatalf("owner flapped within one epoch: %q then %q", owner, again)
		}

		// Epoch bump, join: the only legal move is onto the joiner.
		joiner := fmt.Sprintf("shard-%02d", k+1)
		afterJoin, _ := Owner(dev, append(append([]string(nil), members...), joiner))
		if afterJoin != owner && afterJoin != joiner {
			t.Fatalf("join of %s reshuffled %q between survivors: %q -> %q",
				joiner, dev, owner, afterJoin)
		}

		// Epoch bump, leave of a non-owner: the owner must not move.
		if k > 1 {
			survivors := make([]string, 0, k-1)
			removed := false
			for _, m := range members {
				if !removed && m != owner {
					removed = true
					continue
				}
				survivors = append(survivors, m)
			}
			afterLeave, _ := Owner(dev, survivors)
			if afterLeave != owner {
				t.Fatalf("leave of a non-owner moved %q: %q -> %q", dev, owner, afterLeave)
			}
		}
	})
}
