package phone

import (
	"testing"
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// newTestDevice enrols a single device at Epoch and returns it with its
// engine.
func newTestDevice(t *testing.T, seed uint64, mutate func(*Config)) (*Device, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(seed)
	if mutate != nil {
		mutate(&cfg)
	}
	d := NewDevice("phone-test", eng, cfg)
	d.Enroll(sim.Epoch)
	return d, eng
}

func TestDeviceBootsOnEnroll(t *testing.T) {
	d, eng := newTestDevice(t, 1, nil)
	if d.State() != StateOff {
		t.Fatal("device should be off before the engine runs")
	}
	eng.Step() // the enrol boot event
	if d.State() != StateOn {
		t.Fatalf("state = %v after boot", d.State())
	}
	if d.BootCount() != 1 {
		t.Errorf("BootCount = %d", d.BootCount())
	}
	if d.Kernel() == nil || d.Kernel().Halted() {
		t.Error("kernel not running after boot")
	}
	if d.AppArchServer() == nil || d.DBLogServer() == nil ||
		d.SysAgentServer() == nil || d.MessageServer() == nil {
		t.Error("system servers missing")
	}
}

func TestDeviceRunsOneDay(t *testing.T) {
	d, eng := newTestDevice(t, 2, nil)
	if err := eng.Run(sim.Epoch.Add(24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.Oracle().Count(TruthBoot) < 1 {
		t.Error("no boots recorded")
	}
	d.Finalize()
	if d.Oracle().ObservedHours <= 0 {
		t.Error("no observed hours accounted")
	}
}

func TestShutdownInvokesHooksAndReboots(t *testing.T) {
	d, eng := newTestDevice(t, 3, nil)
	eng.Step() // boot
	var reasons []ShutdownReason
	d.RegisterShutdownHook(func(r ShutdownReason) { reasons = append(reasons, r) })
	d.Shutdown(ReasonUser, 10*time.Minute)
	if d.State() != StateOff {
		t.Fatalf("state = %v after shutdown", d.State())
	}
	if len(reasons) != 1 || reasons[0] != ReasonUser {
		t.Errorf("hook reasons = %v", reasons)
	}
	if err := eng.Run(eng.Now().Add(11 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateOn || d.BootCount() != 2 {
		t.Errorf("device did not reboot: state=%v boots=%d", d.State(), d.BootCount())
	}
}

func TestShutdownHooksAreClearedAcrossBoots(t *testing.T) {
	d, eng := newTestDevice(t, 4, nil)
	eng.Step()
	calls := 0
	d.RegisterShutdownHook(func(ShutdownReason) { calls++ })
	d.Shutdown(ReasonUser, time.Minute)
	if err := eng.Run(eng.Now().Add(2 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	d.Shutdown(ReasonUser, time.Minute)
	if calls != 1 {
		t.Errorf("hook ran %d times; per-boot hooks must not survive a reboot", calls)
	}
}

func TestFreezeHaltsKernelThenBatteryPullReboots(t *testing.T) {
	d, eng := newTestDevice(t, 5, nil)
	eng.Step()
	d.Freeze("test")
	if d.State() != StateFrozen {
		t.Fatalf("state = %v", d.State())
	}
	if !d.Kernel().Halted() {
		t.Error("kernel still running during freeze")
	}
	if err := eng.Run(eng.Now().Add(4 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateOn {
		t.Fatalf("device did not come back after battery pull: %v", d.State())
	}
	if d.Oracle().Count(TruthFreeze) != 1 || d.Oracle().Count(TruthBatteryPull) != 1 {
		t.Errorf("oracle freeze/pull = %d/%d",
			d.Oracle().Count(TruthFreeze), d.Oracle().Count(TruthBatteryPull))
	}
}

func TestFreezeBypassesShutdownHooks(t *testing.T) {
	d, eng := newTestDevice(t, 6, nil)
	eng.Step()
	called := false
	d.RegisterShutdownHook(func(ShutdownReason) { called = true })
	d.Freeze("test")
	if called {
		t.Error("freeze must not give applications a chance to run hooks")
	}
}

func TestSelfShutdownRecordsTruthAndRebootsQuickly(t *testing.T) {
	d, eng := newTestDevice(t, 7, nil)
	eng.Step()
	before := eng.Now()
	d.SelfShutdown("test")
	if d.Oracle().Count(TruthSelfShutdown) != 1 {
		t.Fatal("self-shutdown not recorded")
	}
	if err := eng.Run(before.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.BootCount() != 2 {
		t.Fatalf("BootCount = %d", d.BootCount())
	}
	// The reboot should be quick (the ~80 s mode of Figure 2): find the
	// second boot time.
	var boots []sim.Time
	for _, e := range d.Oracle().Events {
		if e.Kind == TruthBoot {
			boots = append(boots, e.Time)
		}
	}
	off := boots[1].Sub(before)
	if off > 10*time.Minute {
		t.Errorf("self-shutdown off time = %v, expected minutes at most", off)
	}
}

func TestLaunchAndCloseApps(t *testing.T) {
	d, eng := newTestDevice(t, 8, nil)
	eng.Step()
	a := d.LaunchApp(AppCamera)
	if !a.Alive() || a.Name() != AppCamera {
		t.Fatal("camera app not running")
	}
	if again := d.LaunchApp(AppCamera); again != a {
		t.Error("LaunchApp should return the running instance")
	}
	if !d.AppRunning(AppCamera) {
		t.Error("AppRunning false for running app")
	}
	apps := d.RunningApps()
	if len(apps) != 1 || apps[0] != AppCamera {
		t.Errorf("RunningApps = %v", apps)
	}
	d.CloseApp(AppCamera)
	if d.AppRunning(AppCamera) {
		t.Error("camera still running after close")
	}
	if len(d.RunningApps()) != 0 {
		t.Errorf("RunningApps = %v after close", d.RunningApps())
	}
}

func TestShellAppIsInvisible(t *testing.T) {
	d, eng := newTestDevice(t, 9, nil)
	eng.Step()
	sh := d.shellApp()
	if !sh.Alive() {
		t.Fatal("shell not running")
	}
	if len(d.RunningApps()) != 0 {
		t.Errorf("shell leaked into RunningApps: %v", d.RunningApps())
	}
}

func TestRelaunchAfterPanicTermination(t *testing.T) {
	d, eng := newTestDevice(t, 10, nil)
	eng.Step()
	a := d.LaunchApp(AppMessages)
	d.Kernel().Exec(a.Proc().Main(), "die", func() {
		symbos.NullPtr(d.Kernel()).Deref()
	})
	if a.Alive() {
		t.Fatal("app should have been terminated by the panic policy")
	}
	b := d.LaunchApp(AppMessages)
	if !b.Alive() || b == a {
		t.Error("relaunch after termination failed")
	}
}

func TestAppArchServerListsApps(t *testing.T) {
	d, eng := newTestDevice(t, 11, nil)
	eng.Step()
	d.LaunchApp(AppClock)
	d.LaunchApp(AppCamera)
	client := d.Kernel().StartProcess("TestClient", false)
	sess := d.AppArchServer().Connect(client.Main())
	var resp string
	var code int
	d.Kernel().Exec(client.Main(), "list", func() {
		resp, code = sess.Query(OpListApps, "")
	})
	if code != symbos.KErrNone {
		t.Fatalf("code = %d", code)
	}
	if resp != "Camera,Clock" {
		t.Errorf("resp = %q", resp)
	}
}

func TestSysAgentReportsBattery(t *testing.T) {
	d, eng := newTestDevice(t, 12, nil)
	eng.Step()
	client := d.Kernel().StartProcess("TestClient", false)
	sess := d.SysAgentServer().Connect(client.Main())
	var resp string
	d.Kernel().Exec(client.Main(), "batt", func() {
		resp, _ = sess.Query(OpBatteryStatus, "")
	})
	if len(resp) < 2 || resp[:2] != "ok" {
		t.Errorf("battery resp = %q", resp)
	}
	d.battery = 0.01
	d.Kernel().Exec(client.Main(), "batt", func() {
		resp, _ = sess.Query(OpBatteryStatus, "")
	})
	if len(resp) < 3 || resp[:3] != "low" {
		t.Errorf("low battery resp = %q", resp)
	}
}

func TestDBLogRecordsOnlyCallsAndMessages(t *testing.T) {
	d, eng := newTestDevice(t, 13, nil)
	eng.Step()
	gen := d.bootGen
	d.beginActivity(gen, ActCamera)
	d.finishActivity(ActCamera)
	d.beginActivity(gen, ActVoiceCall)
	d.finishActivity(ActVoiceCall)
	recs := d.recentActivity(10)
	if len(recs) != 1 || recs[0].Kind != ActVoiceCall {
		t.Errorf("activity log = %v", recs)
	}
	if recs[0].Ongoing() {
		t.Error("finished call still marked ongoing")
	}
}

func TestActivityEncodingRoundTrip(t *testing.T) {
	recs := []ActivityRecord{
		{Kind: ActVoiceCall, Start: 1000, End: 2000},
		{Kind: ActMessage, Start: 3000, End: sim.Never},
	}
	got := DecodeActivity(encodeActivity(recs))
	if len(got) != 2 {
		t.Fatalf("decoded %d records", len(got))
	}
	if got[0] != recs[0] || got[1] != recs[1] {
		t.Errorf("round trip: %v != %v", got, recs)
	}
	if !got[1].Ongoing() {
		t.Error("ongoing flag lost")
	}
	if DecodeActivity("") != nil {
		t.Error("empty string should decode to nil")
	}
	if got := DecodeActivity("garbage;;also@bad;x@1:z"); len(got) != 0 {
		t.Errorf("garbage decoded to %v", got)
	}
}

func TestDeviceStateString(t *testing.T) {
	if StateOn.String() != "on" || StateOff.String() != "off" || StateFrozen.String() != "frozen" {
		t.Error("state strings wrong")
	}
	if DeviceState(99).String() == "" {
		t.Error("unknown state should still render")
	}
}

func TestFinalizeStopsDevice(t *testing.T) {
	d, eng := newTestDevice(t, 14, nil)
	eng.Step()
	d.Finalize()
	if d.State() != StateOff {
		t.Error("device still on after Finalize")
	}
	hours := d.Oracle().ObservedHours
	d.Finalize() // idempotent
	if d.Oracle().ObservedHours != hours {
		t.Error("double Finalize double-counted uptime")
	}
	// Pending boot events must not revive it.
	if err := eng.Run(eng.Now().Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.State() != StateOff {
		t.Error("finalized device rebooted")
	}
}

func TestFSBasics(t *testing.T) {
	fs := NewFS()
	fs.Write("a/b", []byte("one"))
	fs.Append("a/b", []byte("two"))
	data, ok := fs.Read("a/b")
	if !ok || string(data) != "onetwo" {
		t.Fatalf("read = %q ok=%v", data, ok)
	}
	data[0] = 'X' // must not corrupt the stored file
	if again, _ := fs.Read("a/b"); string(again) != "onetwo" {
		t.Error("Read returned an aliased slice")
	}
	if fs.Size("a/b") != 6 || fs.TotalSize() != 6 {
		t.Error("sizes wrong")
	}
	if !fs.Exists("a/b") || fs.Exists("nope") {
		t.Error("Exists wrong")
	}
	fs.Write("z", []byte("1"))
	if l := fs.List(); len(l) != 2 || l[0] != "a/b" || l[1] != "z" {
		t.Errorf("List = %v", l)
	}
	if fs.Writes() != 3 {
		t.Errorf("Writes = %d", fs.Writes())
	}
	fs.Delete("z")
	fs.Delete("z") // idempotent
	if fs.Exists("z") {
		t.Error("Delete failed")
	}
	fs.MasterReset()
	if fs.TotalSize() != 0 || len(fs.List()) != 0 {
		t.Error("MasterReset left data behind")
	}
}

func TestServiceVisitWipesFlashAndReducesRates(t *testing.T) {
	d, eng := newTestDevice(t, 15, func(c *Config) {
		c.PanicOpportunityPerHour = 0
		// Tiny but nonzero, so the firmware-update scaling is observable
		// without the rate ever actually firing.
		c.SpontaneousFreezePerHour = 1e-9
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.NightOffProb = 0
		c.DayOffPerHour = 0
		c.ServiceFailureThreshold = 3
		c.ServiceProb = 1
		c.ServiceWindow = 14 * 24 * time.Hour
	})
	eng.Step() // boot
	d.FS().Write("logs/logfile", []byte("precious log data"))
	beforeFreeze := d.Config().SpontaneousFreezePerHour

	// Three failures in quick succession trip the service decision.
	for i := 0; i < 3; i++ {
		d.SelfShutdown("test")
		if err := eng.Run(eng.Now().Add(30 * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	// The visit is scheduled within ~a day; run long enough.
	if err := eng.Run(eng.Now().Add(7 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.ServiceVisits() != 1 {
		t.Fatalf("service visits = %d", d.ServiceVisits())
	}
	if d.Oracle().Count(TruthServiceVisit) != 1 {
		t.Error("oracle missing the service visit")
	}
	if d.FS().Exists("logs/logfile") {
		// The logger reinstalls its files after the post-service boot, but
		// the pre-service content must be gone. Since no logger is
		// installed on this bare device, the file must simply not exist.
		t.Error("master reset did not wipe the flash")
	}
	if got := d.Config().SpontaneousFreezePerHour; got >= beforeFreeze {
		t.Errorf("firmware update did not reduce rates: %v >= %v", got, beforeFreeze)
	}
	if d.State() != StateOn {
		t.Errorf("phone did not come back from service: %v", d.State())
	}
}

func TestServiceVisitDisabledByZeroThreshold(t *testing.T) {
	d, eng := newTestDevice(t, 16, func(c *Config) {
		c.PanicOpportunityPerHour = 0
		c.SpontaneousFreezePerHour = 0
		c.SpontaneousShutdownPerHour = 0
		c.OutputFailurePerHour = 0
		c.NightOffProb = 0
		c.DayOffPerHour = 0
		c.ServiceFailureThreshold = 0
		c.ServiceProb = 1
	})
	eng.Step()
	for i := 0; i < 10; i++ {
		d.SelfShutdown("test")
		if err := eng.Run(eng.Now().Add(30 * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(eng.Now().Add(7 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.ServiceVisits() != 0 {
		t.Errorf("service visits = %d with servicing disabled", d.ServiceVisits())
	}
}
