package core

import (
	"testing"
	"time"

	"symfail/internal/phone"
	"symfail/internal/sim"
)

// newLoggedDevice enrols a device with the logger installed and boots it.
func newLoggedDevice(t *testing.T, seed uint64, mutate func(*phone.Config)) (*phone.Device, *Logger, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := phone.DefaultConfig(seed)
	if mutate != nil {
		mutate(&cfg)
	}
	d := phone.NewDevice("phone-under-test", eng, cfg)
	l := Install(d, Config{})
	d.Enroll(sim.Epoch)
	eng.Step() // boot
	return d, l, eng
}

// quiet turns off all stochastic failure sources so tests control events.
func quiet(c *phone.Config) {
	c.PanicOpportunityPerHour = 0
	c.SpontaneousFreezePerHour = 0
	c.SpontaneousShutdownPerHour = 0
	c.NightOffProb = 0
	c.DayOffPerHour = 0
	c.ActivitiesPerDay = 0.0001
}

func bootRecords(recs []Record) []Record {
	var out []Record
	for _, r := range recs {
		if r.Kind == KindBoot {
			out = append(out, r)
		}
	}
	return out
}

func TestFirstBootRecord(t *testing.T) {
	_, l, _ := newLoggedDevice(t, 1, quiet)
	recs := l.Records()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1 boot record", len(recs))
	}
	if recs[0].Kind != KindBoot || recs[0].Detected != DetectedFirstBoot {
		t.Errorf("first record = %+v", recs[0])
	}
	if recs[0].Boot != 1 {
		t.Errorf("Boot = %d", recs[0].Boot)
	}
}

func TestHeartbeatKeepsBeatFresh(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 2, quiet)
	if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	data, ok := d.FS().Read(l.Config().BeatsPath)
	if !ok {
		t.Fatal("no beats file")
	}
	beat, valid := ParseBeat(data)
	if !valid || beat.Kind != BeatAlive {
		t.Fatalf("beat = %+v valid=%v", beat, valid)
	}
	age := eng.Now().Sub(sim.Time(beat.Time))
	if age > l.Config().HeartbeatPeriod {
		t.Errorf("last beat is %v old, period is %v", age, l.Config().HeartbeatPeriod)
	}
}

func TestFreezeDetectedOnNextBoot(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 3, quiet)
	if err := eng.Run(eng.Now().Add(30 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	d.Freeze("test freeze")
	// Run long enough for the battery pull and reboot.
	if err := eng.Run(eng.Now().Add(6 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.BootCount() != 2 {
		t.Fatalf("BootCount = %d", d.BootCount())
	}
	boots := bootRecords(l.Records())
	if len(boots) != 2 {
		t.Fatalf("boot records = %d", len(boots))
	}
	second := boots[1]
	if second.Detected != DetectedFreeze {
		t.Errorf("Detected = %q, want freeze", second.Detected)
	}
	if second.PrevBeat != BeatAlive {
		t.Errorf("PrevBeat = %q, want ALIVE", second.PrevBeat)
	}
	if second.OffSeconds <= 0 {
		t.Errorf("OffSeconds = %v", second.OffSeconds)
	}
}

func TestSelfShutdownDetectedAsShutdownWithShortOffTime(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 4, quiet)
	if err := eng.Run(eng.Now().Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	d.SelfShutdown("test")
	if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	boots := bootRecords(l.Records())
	if len(boots) != 2 {
		t.Fatalf("boot records = %d", len(boots))
	}
	rec := boots[1]
	if rec.Detected != DetectedShutdown || rec.PrevBeat != BeatReboot {
		t.Errorf("record = %+v", rec)
	}
	// Self-shutdown off times cluster around 80 s (Figure 2's inner
	// histogram); they must sit below the 360 s threshold.
	if rec.OffSeconds <= 0 || rec.OffSeconds > 360 {
		t.Errorf("OffSeconds = %v, want (0, 360]", rec.OffSeconds)
	}
}

func TestUserShutdownDetectedAsShutdownWithLongOffTime(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 5, quiet)
	if err := eng.Run(eng.Now().Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	d.Shutdown(phone.ReasonUser, 2*time.Hour)
	if err := eng.Run(eng.Now().Add(3 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	boots := bootRecords(l.Records())
	rec := boots[1]
	if rec.Detected != DetectedShutdown {
		t.Errorf("Detected = %q", rec.Detected)
	}
	if rec.OffSeconds < 7100 || rec.OffSeconds > 7300 {
		t.Errorf("OffSeconds = %v, want ~7200", rec.OffSeconds)
	}
}

func TestLowBatteryAndLoggerOffDetections(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 6, quiet)
	if err := eng.Run(eng.Now().Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	d.Shutdown(phone.ReasonLowBattery, 30*time.Minute)
	if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Shutdown(phone.ReasonLoggerOff, 30*time.Minute)
	if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	boots := bootRecords(l.Records())
	if len(boots) != 3 {
		t.Fatalf("boot records = %d", len(boots))
	}
	if boots[1].Detected != DetectedLowBattery || boots[1].PrevBeat != BeatLowBat {
		t.Errorf("low battery boot = %+v", boots[1])
	}
	if boots[2].Detected != DetectedLoggerOff || boots[2].PrevBeat != BeatMAOff {
		t.Errorf("logger-off boot = %+v", boots[2])
	}
}

func TestPanicRecordCarriesContext(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 7, quiet)
	if err := eng.Run(eng.Now().Add(5 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Open an app and panic inside it.
	a := d.LaunchApp(phone.AppMessages)
	d.Kernel().Exec(a.Proc().Main(), "boom", func() {
		d.Kernel().Raise("KERN-EXEC", 3, "test access violation")
	})
	var panics []Record
	for _, r := range l.Records() {
		if r.Kind == KindPanic {
			panics = append(panics, r)
		}
	}
	if len(panics) != 1 {
		t.Fatalf("panic records = %d", len(panics))
	}
	p := panics[0]
	if p.Category != "KERN-EXEC" || p.PType != 3 {
		t.Errorf("panic identity = %s %d", p.Category, p.PType)
	}
	if p.PanicKey() != "KERN-EXEC 3" {
		t.Errorf("PanicKey = %q", p.PanicKey())
	}
	found := false
	for _, app := range p.Apps {
		if app == phone.AppMessages {
			found = true
		}
	}
	if !found {
		t.Errorf("running apps %v missing the panicking app", p.Apps)
	}
	if p.Activity != "unspecified" {
		t.Errorf("Activity = %q, want unspecified (idle)", p.Activity)
	}
}

func TestPanicDuringCallTaggedVoiceCall(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 8, func(c *phone.Config) {
		quiet(c)
		// One activity class only: calls, very frequent and long.
		c.ActivitiesPerDay = 600
		c.ActivityMix = map[phone.Activity]float64{phone.ActVoiceCall: 1}
		c.ActivityMedianDuration = map[phone.Activity]time.Duration{
			phone.ActVoiceCall: 10 * time.Minute,
		}
		c.ActivitySigma = 0.05
	})
	// Run until a call is in progress.
	deadline := eng.Now().Add(12 * time.Hour)
	for d.CurrentActivity() != phone.ActVoiceCall && eng.Now().Before(deadline) {
		if !eng.Step() {
			break
		}
	}
	if d.CurrentActivity() != phone.ActVoiceCall {
		t.Fatal("never entered a voice call")
	}
	a := d.LaunchApp(phone.AppTelephone)
	d.Kernel().Exec(a.Proc().Main(), "boom", func() {
		d.Kernel().Raise("USER", 11, "descriptor overflow in call UI")
	})
	var last *Record
	for _, r := range l.Records() {
		if r.Kind == KindPanic {
			r := r
			last = &r
		}
	}
	if last == nil {
		t.Fatal("no panic record")
	}
	if last.Activity != string(phone.ActVoiceCall) {
		t.Errorf("Activity = %q, want voice-call", last.Activity)
	}
}

func TestRecordsRoundTripThroughParse(t *testing.T) {
	recs := []Record{
		{Kind: KindBoot, Time: 123, Boot: 1, Detected: DetectedFirstBoot},
		{Kind: KindPanic, Time: 456, Category: "USER", PType: 11, Apps: []string{"Messages"}, Activity: "message"},
	}
	var buf []byte
	for _, r := range recs {
		buf = append(buf, EncodeRecord(r)...)
	}
	buf = append(buf, []byte("not json\n{\"kind\":")...) // corruption at the tail
	got := ParseRecords(buf)
	if len(got) != 2 {
		t.Fatalf("parsed %d records", len(got))
	}
	if got[0].Detected != DetectedFirstBoot || got[1].PanicKey() != "USER 11" {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got[1].When() != sim.Time(456) {
		t.Errorf("When = %v", got[1].When())
	}
}

func TestParseBeatRejectsGarbage(t *testing.T) {
	if _, ok := ParseBeat([]byte("{")); ok {
		t.Error("accepted truncated beat")
	}
	if _, ok := ParseBeat([]byte(`{"kind":"WHAT","time":1}`)); ok {
		t.Error("accepted unknown beat kind")
	}
	if b, ok := ParseBeat(EncodeBeat(Beat{Kind: BeatReboot, Time: 9})); !ok || b.Kind != BeatReboot || b.Time != 9 {
		t.Error("round trip failed")
	}
}

func TestLoggerSurvivesManyRebootCycles(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 9, quiet)
	for i := 0; i < 10; i++ {
		if err := eng.Run(eng.Now().Add(20 * time.Minute)); err != nil {
			t.Fatal(err)
		}
		d.Shutdown(phone.ReasonUser, 5*time.Minute)
		if err := eng.Run(eng.Now().Add(6 * time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	boots := bootRecords(l.Records())
	if len(boots) != 11 {
		t.Fatalf("boot records = %d, want 11", len(boots))
	}
	for i, b := range boots[1:] {
		if b.Detected != DetectedShutdown {
			t.Errorf("boot %d detected %q", i+2, b.Detected)
		}
	}
}

func TestRunAppAndActivityFilesMaintained(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 10, nil)
	if err := eng.Run(eng.Now().Add(36 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.State() != phone.StateOn {
		// A failure may have the phone off right now; that's fine — the
		// files must still exist from when it was on.
		t.Log("phone is not on at inspection time")
	}
	if !d.FS().Exists(l.Config().ActivityPath) {
		t.Error("activity file missing after 36 h")
	}
	if !d.FS().Exists(l.Config().PowerPath) {
		t.Error("power file missing after 36 h")
	}
	// runapp file exists (even if the sampled list was empty at times).
	if !d.FS().Exists(l.Config().RunAppPath) {
		t.Error("runapp file missing after 36 h")
	}
}

func TestLoggerDetectionMatchesOracleOnLongRun(t *testing.T) {
	// End-to-end detection accuracy: every ground-truth freeze must be
	// classified as a freeze by the next boot record, and no orderly
	// shutdown may be classified as a freeze.
	d, l, eng := newLoggedDevice(t, 11, nil)
	if err := eng.Run(eng.Now().Add(45 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Finalize()

	truthFreezes := d.Oracle().Count(phone.TruthFreeze)
	var loggedFreezes, loggedShutdowns int
	for _, r := range bootRecords(l.Records()) {
		switch r.Detected {
		case DetectedFreeze:
			loggedFreezes++
		case DetectedShutdown:
			loggedShutdowns++
		}
	}
	// Every battery-pulled freeze that was followed by a boot appears in
	// the log. The last freeze may be cut off by study end (no reboot),
	// hence the tolerance of one.
	if diff := truthFreezes - loggedFreezes; diff < 0 || diff > 1 {
		t.Errorf("oracle freezes = %d, logged freezes = %d", truthFreezes, loggedFreezes)
	}
	truthShutdowns := d.Oracle().Count(phone.TruthSelfShutdown) + d.Oracle().Count(phone.TruthUserShutdown)
	if diff := truthShutdowns - loggedShutdowns; diff < 0 || diff > 1 {
		t.Errorf("oracle shutdowns = %d, logged = %d", truthShutdowns, loggedShutdowns)
	}
	// Panic records match the oracle panic count exactly: RDebug sees
	// every panic.
	var panicRecs int
	for _, r := range l.Records() {
		if r.Kind == KindPanic {
			panicRecs++
		}
	}
	if panicRecs != d.Oracle().PanicCount() {
		t.Errorf("panic records = %d, oracle = %d", panicRecs, d.Oracle().PanicCount())
	}
}

func TestLogRotationKeepsRecentRecordsParseable(t *testing.T) {
	d, l, eng := newLoggedDevice(t, 12, func(c *phone.Config) { quiet(c) })
	// Tiny cap: force many rotations by cycling boots.
	// (Install already ran in newLoggedDevice; re-install with a small cap
	// is not possible, so exercise rotate directly plus an integration
	// sanity check below.)
	_ = d
	_ = l
	_ = eng

	var data []byte
	for i := 0; i < 100; i++ {
		data = append(data, EncodeRecord(Record{Kind: KindBoot, Time: int64(i), Boot: i + 1, Detected: DetectedFirstBoot})...)
	}
	kept := rotate(data, 500)
	if len(kept) > 500+200 {
		t.Fatalf("rotate kept %d bytes", len(kept))
	}
	recs := ParseRecords(kept)
	if len(recs) == 0 {
		t.Fatal("rotation destroyed all records")
	}
	// The survivors are the MOST RECENT records, contiguous to the end.
	if recs[len(recs)-1].Boot != 100 {
		t.Errorf("last record boot = %d, want 100", recs[len(recs)-1].Boot)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Boot != recs[i-1].Boot+1 {
			t.Errorf("non-contiguous survivors at %d", i)
		}
	}
	// No partial first line: every parsed record is intact (ParseRecords
	// would have skipped a torn line, shrinking the count).
	lines := 0
	for _, b := range kept {
		if b == '\n' {
			lines++
		}
	}
	if lines != len(recs) {
		t.Errorf("%d lines vs %d records: torn line survived", lines, len(recs))
	}
}

func TestRotateNoopWhenSmall(t *testing.T) {
	data := []byte("{\"kind\":\"boot\"}\n")
	if got := rotate(data, 1000); string(got) != string(data) {
		t.Error("rotate modified small data")
	}
}

func TestLoggerEnforcesLogCapEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	cfg := phone.DefaultConfig(31)
	quiet(&cfg)
	cfg.DayOffPerHour = 2 // constant rebooting: lots of boot records
	d := phone.NewDevice("rotate-e2e", eng, cfg)
	l := Install(d, Config{MaxLogBytes: 2048})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(20 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	size := d.FS().Size(l.Config().LogPath)
	if size > 2048+512 {
		t.Errorf("log grew to %d bytes despite 2048 cap", size)
	}
	if recs := l.Records(); len(recs) == 0 {
		t.Error("rotated log unparseable")
	}
}
